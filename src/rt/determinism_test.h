// The §5.1 execution-determinism test.
//
// A SCHED_FIFO, memory-locked task runs a CPU-bound double-precision sine
// loop whose ideal duration is ~1.15 s, reading the TSC before and after.
// Any excess over the ideal is jitter: interrupt service, bottom halves,
// hyperthread contention and bus contention all land here.
#pragma once

#include <vector>

#include "kernel/kernel.h"
#include "metrics/histogram.h"
#include "metrics/summary.h"

namespace rt {

class DeterminismTest {
 public:
  struct Params {
    /// Pure CPU work per iteration — the unloaded ("ideal") loop time.
    sim::Duration loop_work = 1'150 * sim::kMillisecond;
    int iterations = 60;
    double memory_intensity = 0.25;  ///< sine loop: mostly registers + L1
    int rt_priority = 90;
    hw::CpuMask affinity;  ///< empty = all CPUs
  };

  DeterminismTest(kernel::Kernel& kernel, Params params);

  /// The measuring task (pin/shield it before or after boot).
  [[nodiscard]] kernel::Task& task() { return *task_; }

  /// Per-iteration measured loop times (TSC deltas).
  [[nodiscard]] const std::vector<sim::Duration>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool done() const {
    return static_cast<int>(samples_.size()) >= params_.iterations;
  }
  [[nodiscard]] sim::Duration ideal() const { return params_.loop_work; }
  [[nodiscard]] sim::Duration max_observed() const;
  /// Histogram of (sample - ideal) excesses, for the figures' x axis.
  [[nodiscard]] metrics::LatencyHistogram excess_histogram() const;

 private:
  class Behavior;

  kernel::Kernel& kernel_;
  Params params_;
  kernel::Task* task_ = nullptr;
  std::vector<sim::Duration> samples_;
};

}  // namespace rt

#include "workload/fifos_mmap.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void FifosMmap::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const kernel::WaitQueueId a_wq = k.create_wait_queue("fifo_a");
  const kernel::WaitQueueId b_wq = k.create_wait_queue("fifo_b");
  const Params p = params_;

  // The FIFO buffers data: a write marks the peer's side ready, so a read
  // that arrives after the write consumes immediately instead of blocking
  // (avoids the lost-wakeup a bare wait queue would have).
  struct Channel {
    bool ready[2] = {false, false};
  };
  auto ch = std::make_shared<Channel>();

  // Ping-pong pair: each writes into the FIFO (waking the peer), waits for
  // the reply; every N rounds it detours into mmap work.
  const auto make_side = [&](std::string name, int side,
                             kernel::WaitQueueId self,
                             kernel::WaitQueueId peer, bool starts) {
    struct State {
      int phase;  // 0: send, 1: wait/read, 2: mmap detour
      int rounds = 0;
      explicit State(bool s) : phase(s ? 0 : 1) {}
    };
    auto st = std::make_shared<State>(starts);
    kernel::Kernel::TaskParams tp;
    tp.name = std::move(name);
    tp.memory_intensity = 0.5;
    spawn(k, std::move(tp),
          [st, ch, p, side, self, peer](kernel::Kernel& kk,
                                        kernel::Task&) -> kernel::Action {
            switch (st->phase) {
              case 0: {
                st->phase = 1;
                st->rounds++;
                if (st->rounds >= p.pipe_rounds_per_mmap) {
                  st->rounds = 0;
                  st->phase = 2;
                }
                const int peer_side = 1 - side;
                kernel::ProgramBuilder b;
                b.lock(kernel::LockId::kPipe)
                    .work(p.copy_work, 0.6)
                    .unlock(kernel::LockId::kPipe)
                    .effect([ch, peer_side, peer](kernel::Kernel& k2,
                                                  kernel::Task&) {
                      ch->ready[peer_side] = true;
                      k2.wake_up_one(peer);
                    });
                return kernel::SyscallAction{"write(fifo)",
                                             std::move(b).build()};
              }
              case 2:
                st->phase = 1;
                return kernel::SyscallAction{
                    "mmap", kernel::sys::mm_op(kk, p.mmap_body_typical)};
              default:
                if (ch->ready[side]) {
                  // Data already buffered: consume without sleeping.
                  ch->ready[side] = false;
                  st->phase = 0;
                  return kernel::SyscallAction{
                      "read(fifo)",
                      kernel::sys::pipe_op(kk, p.copy_work,
                                           kernel::kNoWaitQueue)};
                }
                // Stay in the wait phase; when woken we re-check the flag.
                return kernel::SyscallAction{
                    "read(fifo) [blocked]",
                    kernel::ProgramBuilder{}.block(self).build()};
            }
          });
  };

  make_side("fifos-a", 0, a_wq, b_wq, /*starts=*/true);
  make_side("fifos-b", 1, b_wq, a_wq, /*starts=*/false);
}

}  // namespace workload

// hackbench-style scheduler stress: N sender/receiver pairs flooding each
// other through FIFOs — the classic way to hammer runqueues and wakeup
// paths. Not one of the paper's loads, but the standard companion stress
// for scheduling-latency measurements (used by the ablation and cyclictest
// benches to pressure the schedulers specifically).
#pragma once

#include "workload/workload.h"

namespace workload {

class Hackbench final : public Workload {
 public:
  struct Params {
    int pairs = 8;
    sim::Duration message_work = 15 * sim::kMicrosecond;
  };

  Hackbench() : Hackbench(Params{}) {}
  explicit Hackbench(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "hackbench"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

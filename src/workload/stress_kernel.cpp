#include "workload/stress_kernel.h"

namespace workload {

void StressKernel::install(config::Platform& platform) {
  NfsCompile(params_.nfs).install(platform);
  TtcpLoopback(params_.ttcp).install(platform);
  FifosMmap(params_.fifos).install(platform);
  P3Fpu(params_.fpu).install(platform);
  FsStress(params_.fs).install(platform);
  Crashme(params_.crashme).install(platform);
}

}  // namespace workload

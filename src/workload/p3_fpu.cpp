#include "workload/p3_fpu.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void P3Fpu::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const Params p = params_;

  for (int i = 0; i < p.tasks; ++i) {
    struct State {
      int phase = 0;
      sim::Rng rng;
      explicit State(sim::Rng r) : rng(r) {}
    };
    auto st = std::make_shared<State>(platform.engine().rng().split());
    kernel::Kernel::TaskParams tp;
    tp.name = "p3-fpu" + (p.tasks > 1 ? std::to_string(i) : std::string());
    tp.memory_intensity = p.memory_intensity;
    spawn(k, std::move(tp),
          [st, p](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
            if (st->phase == 1) {
              st->phase = 0;
              // Occasional progress write (gettimeofday/printf-style).
              return kernel::SyscallAction{"write(stdout)",
                                           kernel::sys::fs_op(kk, 10_us)};
            }
            st->phase = 1;
            return kernel::ComputeAction{
                st->rng.uniform_duration(p.burst_min, p.burst_max),
                p.memory_intensity};
          });
  }
}

}  // namespace workload

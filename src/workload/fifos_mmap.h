// stress-kernel FIFOS_MMAP: alternates between pushing data through a FIFO
// between two processes and operating on an mmap'd file — pipe-lock and
// mm-lock pressure with constant wakeups.
#pragma once

#include "workload/workload.h"

namespace workload {

class FifosMmap final : public Workload {
 public:
  struct Params {
    sim::Duration copy_work = 80 * sim::kMicrosecond;
    sim::Duration mmap_body_typical = 200 * sim::kMicrosecond;
    int pipe_rounds_per_mmap = 16;
  };

  FifosMmap() : FifosMmap(Params{}) {}
  explicit FifosMmap(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "fifos-mmap"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

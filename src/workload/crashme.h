// stress-kernel CRASHME: "generates buffers of random data, then jumps to
// that data and tries to execute it" — a continuous storm of faults,
// exceptions and signal deliveries through the mm layer.
#pragma once

#include "workload/workload.h"

namespace workload {

class Crashme final : public Workload {
 public:
  struct Params {
    sim::Duration buffer_gen_min = 500 * sim::kMicrosecond;
    sim::Duration buffer_gen_max = 4 * sim::kMillisecond;
    int faults_per_buffer = 6;
  };

  Crashme() : Crashme(Params{}) {}
  explicit Crashme(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "crashme"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

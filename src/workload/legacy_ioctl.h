// Legacy BKL-heavy driver clients.
//
// In 2.4, tty, console, and most graphics/char drivers served their ioctls
// under lock_kernel(). A couple of chatty clients keep the BKL hot — the
// §6.3 background against which the BKL-free-ioctl flag is evaluated.
#pragma once

#include "workload/workload.h"

namespace workload {

class LegacyIoctl final : public Workload {
 public:
  struct Params {
    int clients = 2;
    sim::Duration think = 150 * sim::kMicrosecond;
  };

  LegacyIoctl() : LegacyIoctl(Params{}) {}
  explicit LegacyIoctl(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "legacy-ioctl"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

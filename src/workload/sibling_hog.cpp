#include "workload/sibling_hog.h"

#include <memory>
#include <utility>

namespace workload {

void SiblingHog::install(config::Platform& platform) {
  if (params_.duty <= 0.0) return;

  kernel::Kernel::TaskParams tp;
  tp.name = params_.task_name;
  tp.affinity = hw::CpuMask::single(params_.cpu);
  tp.memory_intensity = params_.memory_intensity;

  const auto busy = static_cast<sim::Duration>(
      static_cast<double>(params_.period) * std::min(params_.duty, 1.0));
  const sim::Duration idle = params_.period - busy;
  const double mem = params_.memory_intensity;
  auto on = std::make_shared<bool>(true);
  spawn(platform.kernel(), std::move(tp),
        [busy, idle, mem, on](kernel::Kernel&,
                              kernel::Task&) -> kernel::Action {
          *on = !*on;
          if (*on && idle > 0) return kernel::SleepAction{idle};
          return kernel::ComputeAction{busy == 0 ? 1u : busy, mem};
        });
}

}  // namespace workload

// A duty-cycled CPU hog pinned to one logical CPU — §5.2's "sibling busy"
// neighbour. With hyperthreading on and cpu = the RT task's sibling, the
// hog contends for the shared execution unit; pinned to another core it
// only contends for the bus, which is the Fig 1 vs Fig 4 difference the
// hyperthreading ablation parameterises.
#pragma once

#include <string>

#include "workload/workload.h"

namespace workload {

class SiblingHog final : public Workload {
 public:
  struct Params {
    std::string task_name = "sibling-hog";
    int cpu = 1;
    /// Busy fraction of each period; <= 0 installs nothing.
    double duty = 1.0;
    sim::Duration period = 10 * sim::kMillisecond;
    double memory_intensity = 0.7;
  };

  SiblingHog() : SiblingHog(Params{}) {}
  explicit SiblingHog(Params params) : params_(std::move(params)) {}
  [[nodiscard]] std::string name() const override { return "sibling-hog"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

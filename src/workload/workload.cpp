#include "workload/workload.h"

namespace workload {

kernel::Task& spawn(kernel::Kernel& k, kernel::Kernel::TaskParams params,
                    FnBehavior::Fn fn) {
  return k.create_task(std::move(params),
                       std::make_unique<FnBehavior>(std::move(fn)));
}

std::string WorkloadSet::name() const {
  std::string out;
  for (const auto& m : members_) {
    if (!out.empty()) out += "+";
    out += m->name();
  }
  return out.empty() ? "(empty)" : out;
}

void WorkloadSet::install(config::Platform& platform) {
  for (auto& m : members_) m->install(platform);
}

}  // namespace workload

// stress-kernel FS: "performs all sorts of unnatural acts on a set of
// files, such as creating large files with holes in the middle, then
// truncating and extending those files."
//
// This is the heavy-tail source: large buffered-file operations in 2.4
// could hold the kernel for tens of milliseconds, and on an unpatched
// kernel those stretches are completely non-preemptible — the backbone of
// Fig 5's 92 ms worst case.
#pragma once

#include "workload/workload.h"

namespace workload {

class FsStress final : public Workload {
 public:
  struct Params {
    sim::Duration body_typical = 400 * sim::kMicrosecond;
    std::uint32_t io_bytes_min = 65'536;
    std::uint32_t io_bytes_max = 1'048'576;
    int tasks = 2;
  };

  FsStress() : FsStress(Params{}) {}
  explicit FsStress(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "fs-stress"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

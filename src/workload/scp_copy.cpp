#include "workload/scp_copy.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

namespace {

/// The foreign host: injects rx bursts into the NIC, pausing between files.
class RemoteSender {
 public:
  RemoteSender(sim::Engine& engine, hw::NicDevice& nic,
               const ScpCopy::Params& p)
      : engine_(engine), nic_(nic), p_(p), rng_(engine.rng().split()) {
    schedule_next();
  }

 private:
  void schedule_next() {
    const bool end_of_file = sent_in_file_ >= p_.file_bytes;
    sim::Duration delay = p_.burst_interval;
    if (end_of_file) {
      sent_in_file_ = 0;
      delay = p_.handshake_gap + rng_.uniform_duration(0, 20_ms);
    } else {
      delay += rng_.uniform_duration(0, p_.burst_interval / 4);
    }
    engine_.schedule(delay, [this] {
      nic_.rx(p_.burst_bytes);
      sent_in_file_ += p_.burst_bytes;
      schedule_next();
    });
  }

  sim::Engine& engine_;
  hw::NicDevice& nic_;
  ScpCopy::Params p_;
  sim::Rng rng_;
  std::uint32_t sent_in_file_ = 0;
};

}  // namespace

void ScpCopy::install(config::Platform& platform) {
  auto& k = platform.kernel();

  // The wire side lives for the platform's lifetime.
  auto sender = std::make_shared<RemoteSender>(platform.engine(),
                                               platform.nic_device(), params_);

  // The local scp/sshd receiver process.
  struct State {
    std::shared_ptr<RemoteSender> keepalive;
    std::uint32_t bursts_since_flush = 0;
    int phase = 0;  // 0: wait for data, 1: decrypt, 2: maybe flush
  };
  auto st = std::make_shared<State>();
  st->keepalive = sender;

  const Params p = params_;
  kernel::Kernel::TaskParams tp;
  tp.name = "scp-recv";
  tp.nice = 0;
  tp.memory_intensity = 0.5;
  auto& nic_drv = platform.nic_driver();
  auto& disk_drv = platform.disk_driver();
  const kernel::WaitQueueId io_wq = k.create_wait_queue("scp_io");

  spawn(k, std::move(tp),
        [st, p, &nic_drv, &disk_drv, io_wq](kernel::Kernel& kk,
                                            kernel::Task&) -> kernel::Action {
          switch (st->phase) {
            case 0:
              st->phase = 1;
              return kernel::SyscallAction{
                  "read(socket)",
                  kernel::sys::socket_recv(kk, nic_drv.rx_wait_queue())};
            case 1:
              st->phase = 2;
              return kernel::ComputeAction{p.decrypt_per_burst, 0.55};
            default:
              st->phase = 0;
              st->bursts_since_flush++;
              if (st->bursts_since_flush >= p.flush_every_bursts) {
                st->bursts_since_flush = 0;
                const std::uint32_t bytes = p.burst_bytes * p.flush_every_bursts;
                return kernel::SyscallAction{
                    "write(/tmp/bzImage)",
                    kernel::sys::fs_io(
                        kk, 150_us,
                        [&disk_drv, bytes, io_wq](kernel::Kernel&,
                                                  kernel::Task&) {
                          disk_drv.submit(bytes, /*write=*/true, io_wq);
                        },
                        io_wq)};
              }
              // Small bookkeeping syscall between bursts.
              return kernel::SyscallAction{"stat", kernel::sys::fs_op(kk, 20_us)};
          }
        });
}

}  // namespace workload

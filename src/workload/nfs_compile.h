// stress-kernel NFS-COMPILE: repeated kernel compilation on an NFS file
// system exported over the loopback device.
//
// Two cooperating tasks: the compiler (CPU bursts + file syscalls + NFS
// RPCs over loopback) and nfsd (serves each RPC with filesystem I/O).
// Loopback RPCs charge net-rx softirq work on the sender's CPU — network
// load with no NIC involved, exactly why the paper's Fig 5/6 load stresses
// latency even "without Ethernet activity".
#pragma once

#include "workload/workload.h"

namespace workload {

class NfsCompile final : public Workload {
 public:
  struct Params {
    sim::Duration compile_burst_min = 10 * sim::kMillisecond;
    sim::Duration compile_burst_max = 70 * sim::kMillisecond;
    sim::Duration rpc_proto_work = 120 * sim::kMicrosecond;
    double rpc_softirq_ns_per_call = 60'000;  ///< loopback net-rx work
    sim::Duration nfsd_body_typical = 150 * sim::kMicrosecond;
  };

  NfsCompile() : NfsCompile(Params{}) {}
  explicit NfsCompile(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "nfs-compile"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

#include "workload/nfs_compile.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void NfsCompile::install(config::Platform& platform) {
  auto& k = platform.kernel();
  auto& disk_drv = platform.disk_driver();
  const kernel::WaitQueueId nfsd_wq = k.create_wait_queue("nfsd");
  const kernel::WaitQueueId io_wq = k.create_wait_queue("nfsd_io");
  const Params p = params_;

  // RPCs queue; nfsd only sleeps when none are pending (no lost wakeups).
  auto rpc_pending = std::make_shared<int>(0);

  // nfsd: wait for an RPC, serve it from disk.
  {
    kernel::Kernel::TaskParams tp;
    tp.name = "nfsd";
    tp.memory_intensity = 0.45;
    spawn(k, std::move(tp),
          [rpc_pending, p, nfsd_wq, io_wq, &disk_drv](
              kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
            if (*rpc_pending == 0) {
              return kernel::SyscallAction{
                  "nfsd_wait",
                  kernel::ProgramBuilder{}.block(nfsd_wq).build()};
            }
            (*rpc_pending)--;
            return kernel::SyscallAction{
                "nfsd_serve",
                kernel::sys::fs_io(
                    kk, p.nfsd_body_typical,
                    [&disk_drv, io_wq](kernel::Kernel&, kernel::Task&) {
                      disk_drv.submit(16'384, /*write=*/false, io_wq);
                    },
                    io_wq)};
          });
  }

  // The make driver: forks a gcc per translation unit (real process
  // churn through fork/exec/exit/wait), fires NFS RPCs over loopback,
  // and reaps its zombies.
  {
    struct State {
      int phase = 0;
      int forks = 0;
      sim::Rng rng;
      explicit State(sim::Rng r) : rng(r) {}
    };
    auto st = std::make_shared<State>(platform.engine().rng().split());
    const kernel::WaitQueueId child_exit_wq = k.create_wait_queue("make_wait");
    // Zombie count: a child that exits before the parent reaches wait4
    // must not be lost (real wait4 finds the zombie immediately).
    auto zombies = std::make_shared<int>(0);
    kernel::Kernel::TaskParams tp;
    tp.name = "cc1";
    tp.memory_intensity = 0.7;
    spawn(k, std::move(tp),
          [st, p, nfsd_wq, rpc_pending, child_exit_wq, zombies](
              kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
            switch (st->phase) {
              case 0: {
                // fork+exec a gcc child that does the actual compiling.
                st->phase = 1;
                st->forks++;
                const sim::Duration burst = st->rng.uniform_duration(
                    p.compile_burst_min, p.compile_burst_max);
                const int id = st->forks;
                return kernel::SyscallAction{
                    "fork+exec(gcc)",
                    kernel::sys::fork_exec(
                        kk,
                        [burst, id, child_exit_wq, zombies](kernel::Kernel& k2,
                                                            kernel::Task&) {
                          kernel::Kernel::TaskParams ctp;
                          ctp.name = "gcc." + std::to_string(id);
                          ctp.memory_intensity = 0.7;
                          auto phase = std::make_shared<int>(0);
                          spawn(k2, std::move(ctp),
                                [phase, burst, child_exit_wq, zombies](
                                    kernel::Kernel& k3,
                                    kernel::Task&) -> kernel::Action {
                                  switch ((*phase)++) {
                                    case 0:  // the compile itself
                                      return kernel::ComputeAction{burst, 0.7};
                                    case 1:  // write the object file
                                      return kernel::SyscallAction{
                                          "write(.o)",
                                          kernel::sys::fs_op(k3, 80_us)};
                                    case 2: {  // exit(): wake the waiting parent
                                      kernel::ProgramBuilder b;
                                      b.work(3_us, 0.4).effect(
                                          [child_exit_wq, zombies](
                                              kernel::Kernel& k4,
                                              kernel::Task&) {
                                            (*zombies)++;
                                            k4.wake_up_one(child_exit_wq);
                                          });
                                      return kernel::SyscallAction{
                                          "exit", std::move(b).build()};
                                    }
                                    default:
                                      return kernel::ExitAction{};
                                  }
                                });
                        })};
              }
              case 1:
                // wait4() for the gcc child; a zombie is consumed without
                // sleeping, otherwise block until the exit wakes us and
                // re-check (phase stays here until the zombie appears).
                if (*zombies > 0) {
                  (*zombies)--;
                  st->phase = 2;
                  return kernel::SyscallAction{
                      "wait4 [zombie]",
                      kernel::ProgramBuilder{}.work(3_us, 0.4).build()};
                }
                return kernel::SyscallAction{
                    "wait4", kernel::sys::wait_for_child(kk, child_exit_wq)};
              case 2:
                st->phase = 3;
                // Reap zombies every few compiles, as a shell would.
                if (st->forks % 8 == 0) kk.reap_exited();
                return kernel::SyscallAction{"open/stat",
                                             kernel::sys::fs_op(kk, 60_us)};
              default: {
                st->phase = 0;
                const auto softirq_work = static_cast<sim::Duration>(
                    p.rpc_softirq_ns_per_call);
                return kernel::SyscallAction{
                    "nfs_rpc",
                    kernel::sys::socket_op(
                        kk, p.rpc_proto_work,
                        [nfsd_wq, softirq_work, rpc_pending](
                            kernel::Kernel& k2, kernel::Task& t) {
                          // Loopback delivery: rx processing lands on the
                          // sending CPU, then the server wakes.
                          (*rpc_pending)++;
                          k2.raise_softirq(t.cpu, kernel::SoftirqType::kNetRx,
                                           softirq_work);
                          k2.wake_up_one(nfsd_wq);
                        })};
              }
            }
          });
  }
}

}  // namespace workload

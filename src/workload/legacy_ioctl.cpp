#include "workload/legacy_ioctl.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void LegacyIoctl::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const Params p = params_;
  for (int i = 0; i < p.clients; ++i) {
    kernel::Kernel::TaskParams tp;
    tp.name = "legacy-ioctl" + std::to_string(i);
    tp.memory_intensity = 0.3;
    auto phase = std::make_shared<int>(0);
    spawn(k, std::move(tp),
          [phase, p](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
            if (++*phase % 2 == 0) {
              return kernel::ComputeAction{p.think, 0.3};
            }
            // A tty/console ioctl: the whole driver body under the BKL.
            kernel::ProgramBuilder b;
            b.section(kernel::LockId::kBkl, kk.sample_section(), 0.4);
            return kernel::SyscallAction{"ioctl(tty)", std::move(b).build()};
          });
  }
}

}  // namespace workload

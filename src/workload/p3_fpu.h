// stress-kernel P3_FPU: floating-point matrix operations — pure user-space
// compute with heavy memory traffic. Its kernel-visible effect is cache/bus
// pressure (and HT execution-unit pressure when a sibling runs it).
#pragma once

#include "workload/workload.h"

namespace workload {

class P3Fpu final : public Workload {
 public:
  struct Params {
    sim::Duration burst_min = 8 * sim::kMillisecond;
    sim::Duration burst_max = 40 * sim::kMillisecond;
    double memory_intensity = 0.85;
    int tasks = 1;
  };

  P3Fpu() : P3Fpu(Params{}) {}
  explicit P3Fpu(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "p3-fpu"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

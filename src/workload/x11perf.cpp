#include "workload/x11perf.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void X11Perf::install(config::Platform& platform) {
  auto& k = platform.kernel();
  auto& gpu = platform.gpu_device();
  auto& gpu_drv = platform.gpu_driver();
  const kernel::WaitQueueId x_req_wq = k.create_wait_queue("x11_requests");
  const Params p = params_;

  auto requests_pending = std::make_shared<int>(0);

  // The X server: wait for client requests, build a batch, submit to the
  // GPU, sleep until the completion interrupt.
  {
    struct State {
      int phase = 0;
    };
    auto st = std::make_shared<State>();
    kernel::Kernel::TaskParams tp;
    tp.name = "Xorg";
    tp.memory_intensity = 0.65;
    spawn(k, std::move(tp),
          [st, p, requests_pending, x_req_wq, &gpu, &gpu_drv](
              kernel::Kernel&, kernel::Task&) -> kernel::Action {
            switch (st->phase) {
              case 0:
                if (*requests_pending == 0) {
                  return kernel::SyscallAction{
                      "select",
                      kernel::ProgramBuilder{}.block(x_req_wq).build()};
                }
                (*requests_pending)--;
                st->phase = 1;
                return kernel::ComputeAction{p.server_cpu_per_batch, 0.65};
              default:
                st->phase = 0;
                return kernel::SyscallAction{
                    "gpu_submit+wait",
                    kernel::ProgramBuilder{}
                        .work(5_us, 0.4)
                        .effect([&gpu, p](kernel::Kernel&, kernel::Task&) {
                          gpu.submit_batch(p.commands_per_batch);
                        })
                        .block(gpu_drv.completion_queue())
                        .work(3_us, 0.4)
                        .build()};
            }
          });
  }

  // The x11perf client: think, then fire a request at the server.
  {
    struct State {
      int phase = 0;
    };
    auto st = std::make_shared<State>();
    kernel::Kernel::TaskParams tp;
    tp.name = "x11perf";
    tp.memory_intensity = 0.4;
    spawn(k, std::move(tp),
          [st, p, requests_pending, x_req_wq](kernel::Kernel&,
                                              kernel::Task&) -> kernel::Action {
            if (st->phase == 0) {
              st->phase = 1;
              return kernel::ComputeAction{p.client_think, 0.4};
            }
            st->phase = 0;
            kernel::ProgramBuilder b;
            b.lock(kernel::LockId::kPipe)
                .work(30_us, 0.5)
                .unlock(kernel::LockId::kPipe)
                .effect([requests_pending, x_req_wq](kernel::Kernel& k2,
                                                     kernel::Task&) {
                  (*requests_pending)++;
                  k2.wake_up_one(x_req_wq);
                });
            return kernel::SyscallAction{"write(unix_socket)",
                                         std::move(b).build()};
          });
  }
}

}  // namespace workload

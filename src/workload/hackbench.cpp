#include "workload/hackbench.h"

#include <array>
#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void Hackbench::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const Params p = params_;

  for (int pair = 0; pair < p.pairs; ++pair) {
    const auto a_wq = k.create_wait_queue("hb_a" + std::to_string(pair));
    const auto b_wq = k.create_wait_queue("hb_b" + std::to_string(pair));
    // Message buffer per direction (lossless handoff, like a real pipe).
    auto ready = std::make_shared<std::array<int, 2>>();

    const auto make_side = [&](const std::string& name, int side,
                               kernel::WaitQueueId self,
                               kernel::WaitQueueId peer, bool starts) {
      struct State {
        int phase;
        explicit State(bool s) : phase(s ? 0 : 1) {}
      };
      auto st = std::make_shared<State>(starts);
      kernel::Kernel::TaskParams tp;
      tp.name = name;
      tp.nice = 5;  // background priority, like the real tool's default
      tp.memory_intensity = 0.4;
      spawn(k, std::move(tp),
            [st, ready, p, side, self, peer](kernel::Kernel& kk,
                                             kernel::Task&) -> kernel::Action {
              if (st->phase == 0) {
                st->phase = 1;
                const int peer_side = 1 - side;
                kernel::ProgramBuilder b;
                b.lock(kernel::LockId::kPipe)
                    .work(p.message_work, 0.5)
                    .unlock(kernel::LockId::kPipe)
                    .effect([ready, peer_side, peer](kernel::Kernel& k2,
                                                     kernel::Task&) {
                      (*ready)[static_cast<std::size_t>(peer_side)]++;
                      k2.wake_up_one(peer);
                    });
                return kernel::SyscallAction{"write(pipe)",
                                             std::move(b).build()};
              }
              auto& pending = (*ready)[static_cast<std::size_t>(side)];
              if (pending > 0) {
                pending--;
                st->phase = 0;
                return kernel::SyscallAction{
                    "read(pipe)",
                    kernel::sys::pipe_op(kk, p.message_work,
                                         kernel::kNoWaitQueue)};
              }
              return kernel::SyscallAction{
                  "read(pipe) [blocked]",
                  kernel::ProgramBuilder{}.block(self).build()};
            });
    };
    make_side("hb-send" + std::to_string(pair), 0, a_wq, b_wq, true);
    make_side("hb-recv" + std::to_string(pair), 1, b_wq, a_wq, false);
  }
}

}  // namespace workload

// TTCP — bulk TCP throughput test.
//
// Two variants from the paper:
//  * TtcpLoopback (stress-kernel's TTCP): sender and receiver on the same
//    machine over the loopback device — pure softirq + socket-lock load.
//  * TtcpEthernet (§6.3): reads and writes across a real 10BaseT link —
//    NIC interrupts in both directions.
#pragma once

#include "workload/workload.h"

namespace workload {

class TtcpLoopback final : public Workload {
 public:
  struct Params {
    std::uint32_t chunk_bytes = 32'768;
    sim::Duration proto_work = 120 * sim::kMicrosecond;
    double rx_softirq_ns_per_byte = 7.0;
    sim::Duration sender_pause = 2 * sim::kMillisecond;
  };

  TtcpLoopback() : TtcpLoopback(Params{}) {}
  explicit TtcpLoopback(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "ttcp-loopback"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

class TtcpEthernet final : public Workload {
 public:
  struct Params {
    std::uint32_t chunk_bytes = 8'192;
    /// 10BaseT in §6.3: ~1 MB/s each way.
    sim::Duration send_interval = 8 * sim::kMillisecond;
    sim::Duration proto_work = 100 * sim::kMicrosecond;
  };

  TtcpEthernet() : TtcpEthernet(Params{}) {}
  explicit TtcpEthernet(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "ttcp-ethernet"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

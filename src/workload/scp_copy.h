// The §5.1 Ethernet load:
//
//   while true; do scp bzImage wahoo:/tmp; done
//
// run on a *foreign* host — so the local side is an sshd/scp receiver:
// bursts of NIC rx traffic arrive at link rate, the receiver wakes, spends
// CPU decrypting, and periodically flushes to disk. Between file copies
// there is a short ssh-handshake gap.
#pragma once

#include "workload/workload.h"

namespace workload {

class ScpCopy final : public Workload {
 public:
  struct Params {
    std::uint32_t file_bytes = 1'100'000;  ///< a compressed kernel boot image
    std::uint32_t burst_bytes = 32'768;    ///< rx burst per interrupt batch
    sim::Duration burst_interval = 3 * sim::kMillisecond;  ///< ~10 MB/s
    sim::Duration handshake_gap = 60 * sim::kMillisecond;
    /// Decryption CPU per burst (3DES-era ssh on a 1.4 GHz Xeon).
    sim::Duration decrypt_per_burst = 1500 * sim::kMicrosecond;
    std::uint32_t flush_every_bursts = 8;  ///< write-back cadence
  };

  ScpCopy() : ScpCopy(Params{}) {}
  explicit ScpCopy(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "scp-copy"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

// X11perf on the graphics console (§6.3): an X server submitting command
// batches to the GPU and an x11perf client pumping requests at it over a
// Unix socket — graphics interrupts plus IPC churn.
#pragma once

#include "workload/workload.h"

namespace workload {

class X11Perf final : public Workload {
 public:
  struct Params {
    std::uint32_t commands_per_batch = 400;
    sim::Duration client_think = 2 * sim::kMillisecond;
    sim::Duration server_cpu_per_batch = 800 * sim::kMicrosecond;
  };

  X11Perf() : X11Perf(Params{}) {}
  explicit X11Perf(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "x11perf"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

// The Red Hat stress-kernel suite as configured by Clark Williams' scheduler
// latency study [5] and reused in the paper's §6: NFS-COMPILE, TTCP,
// FIFOS_MMAP, P3_FPU, FS, CRASHME — all at once.
#pragma once

#include "workload/crashme.h"
#include "workload/fifos_mmap.h"
#include "workload/fs_stress.h"
#include "workload/nfs_compile.h"
#include "workload/p3_fpu.h"
#include "workload/ttcp.h"
#include "workload/workload.h"

namespace workload {

class StressKernel final : public Workload {
 public:
  struct Params {
    NfsCompile::Params nfs;
    TtcpLoopback::Params ttcp;
    FifosMmap::Params fifos;
    P3Fpu::Params fpu;
    FsStress::Params fs;
    Crashme::Params crashme;
  };

  StressKernel() : StressKernel(Params{}) {}
  explicit StressKernel(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "stress-kernel"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

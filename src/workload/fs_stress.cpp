#include "workload/fs_stress.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void FsStress::install(config::Platform& platform) {
  auto& k = platform.kernel();
  auto& disk_drv = platform.disk_driver();
  const Params p = params_;

  for (int i = 0; i < p.tasks; ++i) {
    const kernel::WaitQueueId io_wq =
        k.create_wait_queue("fs_stress_io" + std::to_string(i));
    struct State {
      int phase = 0;
      sim::Rng rng;
      explicit State(sim::Rng r) : rng(r) {}
    };
    auto st = std::make_shared<State>(platform.engine().rng().split());
    kernel::Kernel::TaskParams tp;
    tp.name = "fs-stress" + std::to_string(i);
    tp.memory_intensity = 0.6;
    spawn(k, std::move(tp),
          [st, p, &disk_drv, io_wq](kernel::Kernel& kk,
                                    kernel::Task&) -> kernel::Action {
            switch (st->phase) {
              case 0:
                st->phase = 1;
                // truncate/extend: metadata-heavy, long bodies.
                return kernel::SyscallAction{"truncate",
                                             kernel::sys::fs_op(kk, p.body_typical)};
              case 1: {
                st->phase = 2;
                const auto bytes = static_cast<std::uint32_t>(
                    st->rng.uniform(p.io_bytes_min, p.io_bytes_max));
                return kernel::SyscallAction{
                    "write(holes)",
                    kernel::sys::fs_io(
                        kk, p.body_typical,
                        [&disk_drv, bytes, io_wq](kernel::Kernel&,
                                                  kernel::Task&) {
                          disk_drv.submit(bytes, /*write=*/true, io_wq);
                        },
                        io_wq)};
              }
              default:
                st->phase = 0;
                return kernel::ComputeAction{100_us, 0.3};  // loop glue
            }
          });
  }
}

}  // namespace workload

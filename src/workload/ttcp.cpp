#include "workload/ttcp.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void TtcpLoopback::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const kernel::WaitQueueId rx_wq = k.create_wait_queue("ttcp_lo_rx");
  const Params p = params_;

  // Receiver.
  {
    kernel::Kernel::TaskParams tp;
    tp.name = "ttcp-lo-recv";
    tp.memory_intensity = 0.55;
    spawn(k, std::move(tp),
          [rx_wq](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
            return kernel::SyscallAction{"read(socket)",
                                         kernel::sys::socket_recv(kk, rx_wq)};
          });
  }

  // Sender: large writes; loopback rx lands on the sender's CPU.
  {
    struct State {
      int phase = 0;
    };
    auto st = std::make_shared<State>();
    kernel::Kernel::TaskParams tp;
    tp.name = "ttcp-lo-send";
    tp.memory_intensity = 0.55;
    const auto rx_work = static_cast<sim::Duration>(
        static_cast<double>(p.chunk_bytes) * p.rx_softirq_ns_per_byte);
    spawn(k, std::move(tp),
          [st, p, rx_wq, rx_work](kernel::Kernel& kk,
                                  kernel::Task&) -> kernel::Action {
            if (st->phase == 1) {
              st->phase = 0;
              return kernel::ComputeAction{p.sender_pause, 0.4};
            }
            st->phase = 1;
            return kernel::SyscallAction{
                "write(socket)",
                kernel::sys::socket_op(
                    kk, p.proto_work,
                    [rx_wq, rx_work](kernel::Kernel& k2, kernel::Task& t) {
                      k2.raise_softirq(t.cpu, kernel::SoftirqType::kNetRx,
                                       rx_work);
                      k2.wake_up_one(rx_wq);
                    })};
          });
  }
}

void TtcpEthernet::install(config::Platform& platform) {
  auto& k = platform.kernel();
  auto& nic = platform.nic_device();
  auto& nic_drv = platform.nic_driver();
  const Params p = params_;

  // The remote peer streams data at link rate.
  {
    auto rng = std::make_shared<sim::Rng>(platform.engine().rng().split());
    auto& engine = platform.engine();
    // Self-rescheduling injection loop.
    struct Injector {
      static void arm(sim::Engine& e, hw::NicDevice& n, Params pp,
                      std::shared_ptr<sim::Rng> r) {
        const sim::Duration jitter = r->uniform_duration(0, pp.send_interval / 4);
        e.schedule(pp.send_interval + jitter, [&e, &n, pp, r] {
          n.rx(pp.chunk_bytes);
          arm(e, n, pp, r);
        });
      }
    };
    Injector::arm(engine, nic, p, rng);
  }

  // Local ttcp: read from the wire, write back out.
  {
    struct State {
      int phase = 0;
    };
    auto st = std::make_shared<State>();
    kernel::Kernel::TaskParams tp;
    tp.name = "ttcp-eth";
    tp.memory_intensity = 0.5;
    spawn(k, std::move(tp),
          [st, p, &nic, &nic_drv](kernel::Kernel& kk,
                                  kernel::Task&) -> kernel::Action {
            if (st->phase == 0) {
              st->phase = 1;
              return kernel::SyscallAction{
                  "read(socket)",
                  kernel::sys::socket_recv(kk, nic_drv.rx_wait_queue())};
            }
            st->phase = 0;
            return kernel::SyscallAction{
                "write(socket)",
                kernel::sys::socket_op(kk, p.proto_work,
                                       [&nic, p](kernel::Kernel&,
                                                 kernel::Task&) {
                                         nic.tx(p.chunk_bytes);
                                       })};
          });
  }
}

}  // namespace workload

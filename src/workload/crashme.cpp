#include "workload/crashme.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void Crashme::install(config::Platform& platform) {
  auto& k = platform.kernel();
  const Params p = params_;

  struct State {
    int faults_left = 0;
    sim::Rng rng;
    explicit State(sim::Rng r) : rng(r) {}
  };
  auto st = std::make_shared<State>(platform.engine().rng().split());

  kernel::Kernel::TaskParams tp;
  tp.name = "crashme";
  tp.memory_intensity = 0.5;
  spawn(k, std::move(tp),
        [st, p](kernel::Kernel& kk, kernel::Task&) -> kernel::Action {
          if (st->faults_left == 0) {
            st->faults_left = p.faults_per_buffer;
            return kernel::ComputeAction{
                st->rng.uniform_duration(p.buffer_gen_min, p.buffer_gen_max),
                0.6};
          }
          st->faults_left--;
          return kernel::SyscallAction{"fault",
                                       kernel::sys::fault_storm(kk)};
        });
}

}  // namespace workload

// The §5.1 disk load ("disknoise"): a shell script that recursively
// concatenates files —
//
//   while true; do for f in 0..9; do cat * > $f; done; ...; rm *; done
//
// i.e. a continuous stream of reads and ever-growing buffered writes with
// periodic unlink bursts. Kernel-visible effects: fs syscalls holding
// fs/dcache locks, disk requests, block-softirq completions.
#pragma once

#include "workload/workload.h"

namespace workload {

class DiskNoise final : public Workload {
 public:
  struct Params {
    sim::Duration cat_body_typical = 150 * sim::kMicrosecond;
    std::uint32_t io_bytes_min = 4'096;
    std::uint32_t io_bytes_max = 262'144;
    int cats_per_cycle = 10;       ///< the for-loop width in the script
    int cycles_before_rm = 3;      ///< `cnt -ge 3` in the script
    sim::Duration think = 200 * sim::kMicrosecond;  ///< shell overhead
  };

  DiskNoise() : DiskNoise(Params{}) {}
  explicit DiskNoise(Params params) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "disknoise"; }
  void install(config::Platform& platform) override;

 private:
  Params params_;
};

}  // namespace workload

#include "workload/disk_noise.h"

#include <memory>

#include "kernel/syscalls.h"

namespace workload {

using namespace sim::literals;

void DiskNoise::install(config::Platform& platform) {
  auto& k = platform.kernel();
  auto& disk_drv = platform.disk_driver();
  const kernel::WaitQueueId io_wq = k.create_wait_queue("disknoise_io");

  struct State {
    int cat_index = 0;
    int cycle = 0;
    int phase = 0;  // 0: cat (fs io), 1: think/shell
    sim::Rng rng;
    explicit State(sim::Rng r) : rng(r) {}
  };
  auto st = std::make_shared<State>(platform.engine().rng().split());

  const Params p = params_;
  kernel::Kernel::TaskParams tp;
  tp.name = "disknoise";
  tp.nice = 0;
  tp.memory_intensity = 0.6;  // streams file data through the cache

  spawn(k, std::move(tp),
        [st, p, &disk_drv, io_wq](kernel::Kernel& kk,
                                  kernel::Task&) -> kernel::Action {
          if (st->phase == 1) {
            st->phase = 0;
            return kernel::ComputeAction{p.think, 0.3};
          }
          st->phase = 1;
          st->cat_index++;
          if (st->cat_index >= p.cats_per_cycle) {
            st->cat_index = 0;
            st->cycle++;
            if (st->cycle >= p.cycles_before_rm) {
              st->cycle = 0;
              // `rm *` — a directory-heavy metadata operation.
              return kernel::SyscallAction{"unlink*",
                                           kernel::sys::fs_op(kk, 800_us)};
            }
          }
          // `cat * > $f`: read everything, write a growing file. Most cats
          // hit the page cache (buffered writes); roughly every fourth one
          // forces real disk I/O via write-back pressure.
          const auto bytes = static_cast<std::uint32_t>(
              st->rng.uniform(p.io_bytes_min, p.io_bytes_max));
          if (st->rng.chance(0.25)) {
            return kernel::SyscallAction{
                "cat [writeback]",
                kernel::sys::fs_io(
                    kk, p.cat_body_typical,
                    [&disk_drv, bytes, io_wq](kernel::Kernel&, kernel::Task&) {
                      disk_drv.submit(bytes, /*write=*/true, io_wq);
                    },
                    io_wq)};
          }
          return kernel::SyscallAction{
              "cat [cached]", kernel::sys::fs_op(kk, p.cat_body_typical)};
        });
}

}  // namespace workload

// Workload framework.
//
// A workload installs background tasks (and external traffic sources) on a
// Platform. Behaviours are written as lambdas over shared per-task state
// via FnBehavior, which keeps each generator compact and readable.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config/platform.h"
#include "kernel/task.h"

namespace workload {

/// Behavior adapter: the next-action function is a lambda.
class FnBehavior final : public kernel::Behavior {
 public:
  using Fn = std::function<kernel::Action(kernel::Kernel&, kernel::Task&)>;
  explicit FnBehavior(Fn fn) : fn_(std::move(fn)) {}
  kernel::Action next_action(kernel::Kernel& k, kernel::Task& t) override {
    return fn_(k, t);
  }

 private:
  Fn fn_;
};

/// Create a background task driven by `fn`.
kernel::Task& spawn(kernel::Kernel& k, kernel::Kernel::TaskParams params,
                    FnBehavior::Fn fn);

/// A named background load that can be installed on a platform.
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Create tasks / start traffic. Call before or after boot().
  virtual void install(config::Platform& platform) = 0;
};

/// Composite: installs each member in order.
class WorkloadSet final : public Workload {
 public:
  void add(std::unique_ptr<Workload> w) { members_.push_back(std::move(w)); }
  [[nodiscard]] std::string name() const override;
  void install(config::Platform& platform) override;
  [[nodiscard]] std::size_t size() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<Workload>> members_;
};

}  // namespace workload

// Name → factory registry for workloads.
//
// Scenario specs reference workloads by the same token Workload::name()
// returns; the registry turns those tokens back into objects, applying
// per-workload JSON parameters where the workload has tunables. Unknown
// names and unknown parameter keys throw — spec validation surfaces both
// before any simulation runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/json.h"
#include "workload/workload.h"

namespace workload {

/// All registered workload names, sorted.
[[nodiscard]] std::vector<std::string> registry_names();

[[nodiscard]] bool registry_contains(const std::string& name);

/// Build a workload by name. `params` must be a JSON object (use
/// config::json::Value::object() for defaults); throws std::runtime_error
/// on an unknown name or an unknown/invalid parameter key.
[[nodiscard]] std::unique_ptr<Workload> make_workload(
    const std::string& name, const config::json::Value& params);

}  // namespace workload

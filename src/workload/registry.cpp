#include "workload/registry.h"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>
#include <utility>

#include "workload/crashme.h"
#include "workload/disk_noise.h"
#include "workload/fifos_mmap.h"
#include "workload/fs_stress.h"
#include "workload/hackbench.h"
#include "workload/legacy_ioctl.h"
#include "workload/nfs_compile.h"
#include "workload/p3_fpu.h"
#include "workload/scp_copy.h"
#include "workload/sibling_hog.h"
#include "workload/stress_kernel.h"
#include "workload/ttcp.h"
#include "workload/x11perf.h"

namespace workload {
namespace {

using config::json::Value;

using Factory = std::function<std::unique_ptr<Workload>(const Value&)>;

void require_object(const std::string& name, const Value& params) {
  if (!params.is_object()) {
    throw std::runtime_error("workload '" + name +
                             "': params must be a JSON object");
  }
}

/// Factory for a workload with no scenario-tunable parameters: the only
/// accepted params value is the empty object.
template <typename W>
Factory plain(const char* name) {
  return [name](const Value& params) -> std::unique_ptr<Workload> {
    require_object(name, params);
    if (!params.members().empty()) {
      throw std::runtime_error("workload '" + std::string(name) +
                               "': unknown parameter '" +
                               params.members().front().first + "'");
    }
    return std::make_unique<W>();
  };
}

std::unique_ptr<Workload> make_sibling_hog(const Value& params) {
  require_object("sibling-hog", params);
  SiblingHog::Params p;
  for (const auto& [key, v] : params.members()) {
    if (key == "task_name") {
      p.task_name = v.as_string();
    } else if (key == "cpu") {
      p.cpu = static_cast<int>(v.as_i64());
    } else if (key == "duty") {
      p.duty = v.as_double();
    } else if (key == "period_ns") {
      p.period = static_cast<sim::Duration>(v.as_u64());
    } else if (key == "memory_intensity") {
      p.memory_intensity = v.as_double();
    } else {
      throw std::runtime_error("workload 'sibling-hog': unknown parameter '" +
                               key + "'");
    }
  }
  return std::make_unique<SiblingHog>(p);
}

const std::map<std::string, Factory>& table() {
  static const std::map<std::string, Factory> t = {
      {"scp-copy", plain<ScpCopy>("scp-copy")},
      {"disknoise", plain<DiskNoise>("disknoise")},
      {"stress-kernel", plain<StressKernel>("stress-kernel")},
      {"x11perf", plain<X11Perf>("x11perf")},
      {"ttcp-ethernet", plain<TtcpEthernet>("ttcp-ethernet")},
      {"ttcp-loopback", plain<TtcpLoopback>("ttcp-loopback")},
      {"hackbench", plain<Hackbench>("hackbench")},
      {"legacy-ioctl", plain<LegacyIoctl>("legacy-ioctl")},
      {"crashme", plain<Crashme>("crashme")},
      {"fs-stress", plain<FsStress>("fs-stress")},
      {"fifos-mmap", plain<FifosMmap>("fifos-mmap")},
      {"nfs-compile", plain<NfsCompile>("nfs-compile")},
      {"p3-fpu", plain<P3Fpu>("p3-fpu")},
      {"sibling-hog", make_sibling_hog},
  };
  return t;
}

}  // namespace

std::vector<std::string> registry_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, factory] : table()) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool registry_contains(const std::string& name) {
  return table().count(name) != 0;
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const config::json::Value& params) {
  const auto it = table().find(name);
  if (it == table().end()) {
    throw std::runtime_error("unknown workload '" + name + "'");
  }
  return it->second(params);
}

}  // namespace workload

// Snapshot-capable allocation arena.
//
// A StateArena owns one large reserved address range and serves every
// `operator new` issued while the arena is *active* on the calling thread
// (see Scope). Because all mutable platform state then lives at stable
// addresses inside one contiguous range, a byte copy of the used region
// plus the allocator cursor (Mark) is a complete, restorable checkpoint of
// an arbitrarily tangled object graph — including std::function closures,
// vtable pointers and raw cross-object pointers, none of which could be
// serialized field-by-field. Snapshot (snapshot.h) builds on exactly this.
//
// Contract:
//  * One thread uses an arena at a time (callers serialize, e.g. the
//    prefix-cache entry mutex). The *routing* of frees is cross-thread
//    safe — a pointer inside any live arena's range is returned to that
//    arena — but concurrent alloc/free on one arena is not.
//  * Objects allocated while active must be destroyed (or rolled back via
//    restore) before the arena is reset. Restore does not run destructors;
//    it rewinds memory, which is only sound when every object beyond the
//    mark either was already destroyed or holds no resources outside the
//    arena. Platform state satisfies this by construction: the simulator
//    owns no OS handles, and all its heap allocations are arena-routed.
//  * Arenas are pooled and their mappings are never released back to the
//    OS while the process runs (acquire_pooled/release_pooled), so a stale
//    pointer from a function-local static can never point into unmapped
//    memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sim {

class StateArena {
 public:
  /// Size classes: payloads of 16 << i bytes, i in [0, kClasses). Larger
  /// blocks are bump-allocated and not reused until restore()/reset().
  static constexpr std::size_t kClasses = 17;  // 16 B .. 1 MiB
  static constexpr std::size_t kMaxClassBytes = std::size_t{16}
                                                << (kClasses - 1);

  /// Allocator cursor: everything needed (besides the region bytes) to
  /// return the arena to an earlier allocation state.
  struct Mark {
    std::size_t bump = 0;
    std::array<void*, kClasses> free_heads{};
  };

  /// Reserve `reserve_bytes` of address space (committed lazily by the
  /// OS as it is touched). Throws std::bad_alloc when the mapping fails.
  explicit StateArena(std::size_t reserve_bytes = kDefaultReserveBytes);
  ~StateArena();
  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  /// RAII activation: while alive, global operator new on this thread is
  /// served from the arena. Nests; pause() temporarily reverts to the
  /// previous allocator (used to copy results out to ordinary heap).
  class Scope {
   public:
    explicit Scope(StateArena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    void pause();
    void resume();

   private:
    StateArena* arena_;
    StateArena* prev_;
    bool active_ = false;
  };

  /// The arena currently active on this thread, or nullptr.
  static StateArena* current();

  /// Serve an allocation (size-class freelist first, bump otherwise).
  /// Throws std::bad_alloc when the reserved range is exhausted — there is
  /// deliberately no fallback to malloc, which would silently break the
  /// byte-copy snapshot invariant.
  void* allocate(std::size_t size, std::size_t align);

  /// Return a block previously handed out by allocate(). Safe to call from
  /// any thread and whether or not the arena is active.
  void deallocate(void* p);

  /// True when `p` lies inside this arena's reserved range.
  [[nodiscard]] bool contains(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + reserve_;
  }

  /// Route `p` to the arena that owns it, or return false when `p` is not
  /// inside any live arena (i.e. it came from malloc).
  static bool deallocate_routed(void* p);

  [[nodiscard]] Mark mark() const;
  /// Rewind the cursor to `m`. The caller is responsible for the region
  /// bytes themselves (Snapshot::restore copies them back first).
  void restore_mark(const Mark& m);

  /// Drop every allocation (no destructors run — see class contract).
  void reset();

  [[nodiscard]] const std::byte* base() const { return base_; }
  [[nodiscard]] std::size_t used() const { return bump_; }
  [[nodiscard]] std::size_t reserved() const { return reserve_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t live_blocks() const { return live_blocks_; }

  /// Process-wide arena pool. Arenas come out reset; their mappings stay
  /// alive for the life of the process (see class comment).
  static StateArena* acquire_pooled();
  static void release_pooled(StateArena* arena);

  static constexpr std::size_t kDefaultReserveBytes = std::size_t{512} << 20;

 private:
  struct BlockHeader;  // 16-byte header preceding every payload

  void* bump_allocate(std::size_t payload, std::size_t align);

  std::byte* base_ = nullptr;
  std::size_t reserve_ = 0;
  std::size_t bump_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t live_blocks_ = 0;
  std::array<void*, kClasses> free_heads_{};
};

/// Pool handle: acquire on construction, release (after reset) on
/// destruction.
class PooledArena {
 public:
  PooledArena() : arena_(StateArena::acquire_pooled()) {}
  ~PooledArena() {
    if (arena_ != nullptr) StateArena::release_pooled(arena_);
  }
  PooledArena(const PooledArena&) = delete;
  PooledArena& operator=(const PooledArena&) = delete;
  StateArena& operator*() const { return *arena_; }
  StateArena* operator->() const { return arena_; }
  StateArena* get() const { return arena_; }

 private:
  StateArena* arena_;
};

}  // namespace sim

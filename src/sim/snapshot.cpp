#include "sim/snapshot.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "sim/assert.h"

namespace sim {

void Snapshot::FreeDeleter::operator()(std::byte* p) const { std::free(p); }

Snapshot Snapshot::capture(const StateArena& arena) {
  Snapshot s;
  s.mark_ = arena.mark();
  s.size_ = s.mark_.bump;
  if (s.size_ > 0) {
    auto* buf = static_cast<std::byte*>(std::malloc(s.size_));
    if (buf == nullptr) throw std::bad_alloc{};
    std::memcpy(buf, arena.base(), s.size_);
    s.data_.reset(buf);
  } else {
    // Distinguish "captured an empty arena" from "never captured".
    auto* buf = static_cast<std::byte*>(std::malloc(1));
    if (buf == nullptr) throw std::bad_alloc{};
    s.data_.reset(buf);
  }
  return s;
}

void Snapshot::restore(StateArena& arena) const {
  SIM_ASSERT((valid()) && "restore from empty snapshot");
  // restore_mark first: it unpoisons the touched range, which must happen
  // before memcpy writes into memory ASan may still consider poisoned.
  arena.restore_mark(mark_);
  if (size_ > 0) {
    std::memcpy(const_cast<std::byte*>(arena.base()), data_.get(), size_);
  }
}

}  // namespace sim

#include "sim/engine.h"

#include "sim/assert.h"

namespace sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

EventId Engine::schedule_at(Time at, EventQueue::Callback cb) {
  SIM_ASSERT_MSG(at >= now_, "scheduling into the past");
  return queue_.schedule_at(at, std::move(cb));
}

void Engine::run_until(Time deadline) {
  Time at = 0;
  EventQueue::Callback cb;
  while (queue_.pop_before(deadline, at, cb)) {
    SIM_ASSERT(at >= now_);
    now_ = at;
    ++events_executed_;
    cb();
  }
  if (now_ < deadline) now_ = deadline;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [at, cb] = queue_.pop();
  SIM_ASSERT(at >= now_);
  now_ = at;
  ++events_executed_;
  cb();
  return true;
}

void Engine::run_to_completion() {
  while (step()) {
  }
}

}  // namespace sim

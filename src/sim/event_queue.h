// The discrete-event calendar.
//
// A binary min-heap keyed by (time, sequence). The sequence number makes
// ordering of same-timestamp events deterministic (FIFO in scheduling
// order), which keeps whole experiments bit-reproducible.
//
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// on pop. The simulator cancels frequently (every preemption cancels a
// segment-completion event), so membership is tracked in a hash set rather
// than by rebuilding the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace sim {

/// Opaque handle to a scheduled event; used to cancel it.
struct EventId {
  std::uint64_t seq = 0;  ///< 0 means "no event".

  [[nodiscard]] bool valid() const { return seq != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timed callbacks.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  /// Schedule `cb` at absolute time `at`. Events at equal times fire in
  /// insertion order.
  EventId schedule_at(Time at, Callback cb);

  /// Remove a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  /// Number of live (non-cancelled, non-fired) events.
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Timestamp of the next live event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and return the next live event. Requires !empty().
  std::pair<Time, Callback> pop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Callback cb;

    // std::push_heap builds a max-heap; invert the comparison for min-heap.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Remove cancelled entries sitting at the top of the heap.
  void drop_dead_prefix();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace sim

// The discrete-event calendar.
//
// A hierarchical timing wheel. Events live in a slab of generation-tagged
// slots; the wheel indexes them by expiry:
//
//   * `ready_`  — the current level-0 bucket, sorted once on drain and
//                 consumed front to back. The common case pops from here
//                 with no heap traffic at all.
//   * `near_`   — a small binary min-heap for events scheduled *into* the
//                 imminent window after it was drained (at < horizon_).
//                 Pops take the earlier (time, seq) of the two fronts.
//   * 5 wheel levels × 64 buckets — level 0 buckets are 2^10 ns (~1 µs)
//                 wide; each level up is 64× coarser, covering ~18 minutes
//                 in total. A per-level occupancy bitmap finds the next
//                 pending bucket in O(1).
//   * `overflow_` — a min-heap for events beyond the wheel span.
//
// When the near heap drains, the earliest pending bucket is either moved
// into it (level 0) or cascaded one level down; `horizon_` advances to the
// end of the new window. Since every event outside `near_` has
// `at >= horizon_` and every event inside has `at < horizon_`, wheel
// rotation never reorders events: the (time, seq) order of pops — and with
// it bit-reproducible runs, same-timestamp events firing in insertion
// order — is preserved exactly as with the old binary heap.
//
// Cancellation is O(1): the EventId carries (slot, generation); cancel
// marks the slot dead and drops its callback, and the tombstone is
// reclaimed when the wheel meets it — or by a compaction sweep when
// tombstones outnumber live events, so cancel-heavy runs stay bounded.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace sim {

/// Opaque handle to a scheduled event; used to cancel it. Encodes a 24-bit
/// slot index plus a 40-bit generation tag, so a stale id (already fired or
/// cancelled, slot since reused) can never cancel somebody else's event.
/// 40 generation bits put the wrap beyond 10^12 reuses of one slot — out of
/// reach for any run this simulator can complete (a 32-bit tag was not: the
/// free list is LIFO, so a hot slot could wrap in a long cancel-heavy run
/// and let a stale id cancel an innocent event).
struct EventId {
  std::uint64_t raw = 0;  ///< 0 means "no event".

  [[nodiscard]] bool valid() const { return raw != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Priority queue of timed callbacks.
class EventQueue {
 public:
  using Callback = sim::Callback;

  EventQueue() = default;

  /// Schedule `cb` at absolute time `at`. Events at equal times fire in
  /// insertion order.
  EventId schedule_at(Time at, Callback cb);

  /// Remove a pending event in O(1). Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, non-fired) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the next live event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and return the next live event. Requires !empty().
  std::pair<Time, Callback> pop();

  /// Pop the next live event only if it fires at or before `deadline`;
  /// false (and no state change beyond tombstone reclamation) otherwise or
  /// when the queue is empty. One lane refresh + one front comparison per
  /// event where next_time() + pop() would do both twice — the engine's
  /// run_until hot path.
  bool pop_before(Time deadline, Time& at, Callback& cb);

  /// Number of event slots ever allocated (live + tombstoned + free).
  /// Exposed so tests can assert cancel-heavy runs stay memory-bounded.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

 private:
  static constexpr int kGranularityBits = 10;  ///< level-0 bucket: 1024 ns
  static constexpr int kBucketBits = 6;        ///< 64 buckets per level
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr int kLevels = 5;  ///< wheel span ~2^40 ns (~18 min)
  static constexpr Time kWindow = Time{1} << kGranularityBits;
  static constexpr std::uint64_t kBucketMask = kBuckets - 1;

  static constexpr int level_shift(int level) {
    return kGranularityBits + level * kBucketBits;
  }

  /// EventId bit split: high 24 bits slot index, low 40 bits generation.
  static constexpr int kGenBits = 40;
  static constexpr std::uint64_t kGenMask = (std::uint64_t{1} << kGenBits) - 1;
  static constexpr std::size_t kMaxSlots = std::size_t{1} << (64 - kGenBits);

  struct Slot {
    Time at = 0;
    std::uint64_t seq = 0;
    std::uint64_t gen = 1;  ///< 40 usable bits (see kGenBits)
    bool live = false;
    Callback cb;
  };

  /// Sort key mirrored out of the slot so heap ops touch 24 contiguous
  /// bytes instead of whole slots.
  struct Key {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// std::push_heap builds a max-heap; invert the comparison for min-heap.
  struct KeyAfter {
    bool operator()(const Key& a, const Key& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static bool key_before(const Key& a, const Key& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t index);
  void place(Key k);
  void drop_dead_near();
  void refresh_near();
  void advance_window();
  void pull_overflow();
  void maybe_compact();
  void compact();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Key> ready_;       ///< drained bucket, sorted; served by index
  std::size_t ready_head_ = 0;   ///< next unserved entry in ready_
  std::vector<Key> near_;      ///< min-heap: events with at < horizon_
  std::vector<Key> overflow_;  ///< min-heap: events beyond the wheel span
  std::array<std::vector<std::uint32_t>, kLevels * kBuckets> buckets_;
  std::array<std::uint64_t, kLevels> occupied_{};  ///< per-level bucket bitmap
  std::vector<std::uint32_t> scratch_;  ///< reused cascade buffer
  Time horizon_ = 0;  ///< events outside near_ all have at >= horizon_
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;  ///< tombstones not yet reclaimed
};

}  // namespace sim

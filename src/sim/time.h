// Simulated time: 64-bit nanoseconds since simulation start.
//
// All latency results in this project are exact differences of event
// timestamps, so the representation must be integral — no floating-point
// clock drift, no wall-clock nondeterminism.
#pragma once

#include <cstdint>
#include <string>

namespace sim {

/// Absolute simulation time in nanoseconds.
using Time = std::uint64_t;
/// A span of simulation time in nanoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// User-defined literals so model parameters read like the paper's text:
/// `2_ms`, `565_us`, `10_ms`.
namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) { return v * kMicrosecond; }
constexpr Duration operator""_ms(unsigned long long v) { return v * kMillisecond; }
constexpr Duration operator""_s(unsigned long long v) { return v * kSecond; }
}  // namespace literals

/// Convert a duration to seconds as a double (for reporting only).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }
/// Convert a duration to milliseconds as a double (for reporting only).
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }
/// Convert a duration to microseconds as a double (for reporting only).
constexpr double to_micros(Duration d) { return static_cast<double>(d) / 1e3; }

/// Round a double number of seconds to the nearest representable Duration.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + 0.5);
}

/// Human-readable rendering, e.g. "1.150 s", "565 us", "27 ns".
std::string format_duration(Duration d);

}  // namespace sim

#include "sim/trace.h"

#include <sstream>

namespace sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSched: return "sched";
    case TraceCategory::kIrq: return "irq";
    case TraceCategory::kSoftirq: return "softirq";
    case TraceCategory::kLock: return "lock";
    case TraceCategory::kSyscall: return "syscall";
    case TraceCategory::kShield: return "shield";
    case TraceCategory::kDevice: return "device";
    case TraceCategory::kWorkload: return "workload";
  }
  return "?";
}

void Trace::enable(std::size_t capacity) {
  enabled_ = true;
  capacity_ = capacity;
}

void Trace::record(Time at, TraceCategory category, int cpu, std::string message) {
  if (!enabled_) return;
  if (records_.size() >= capacity_) records_.pop_front();
  records_.push_back(TraceRecord{at, category, cpu, std::move(message)});
}

std::vector<TraceRecord> Trace::by_category(TraceCategory c) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == c) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << format_duration(r.at) << " [" << to_string(r.category) << "]";
    if (r.cpu >= 0) os << " cpu" << r.cpu;
    os << " " << r.message << "\n";
  }
  return os.str();
}

}  // namespace sim

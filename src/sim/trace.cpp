#include "sim/trace.h"

#include <sstream>
#include <utility>

namespace sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSched: return "sched";
    case TraceCategory::kIrq: return "irq";
    case TraceCategory::kSoftirq: return "softirq";
    case TraceCategory::kLock: return "lock";
    case TraceCategory::kSyscall: return "syscall";
    case TraceCategory::kShield: return "shield";
    case TraceCategory::kDevice: return "device";
    case TraceCategory::kWorkload: return "workload";
  }
  return "?";
}

void Trace::enable(std::size_t capacity) {
  enabled_ = true;
  capacity_ = capacity;
}

void Trace::record(Time at, TraceCategory category, int cpu, std::string message) {
  if (!enabled_) return;
  if (records_.size() >= capacity_) records_.pop_front();
  records_.push_back(TraceRecord{at, category, cpu, std::move(message)});
}

std::vector<TraceRecord> Trace::by_category(TraceCategory c) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == c) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::ostringstream os;
  for (const auto& r : records_) {
    os << format_duration(r.at) << " [" << to_string(r.category) << "]";
    if (r.cpu >= 0) os << " cpu" << r.cpu;
    os << " " << r.message << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Latency chains
// ---------------------------------------------------------------------------

const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::kIrqRaise: return "irq-raise";
    case SegmentKind::kIrqHandler: return "irq-handler";
    case SegmentKind::kSoftirq: return "softirq";
    case SegmentKind::kTimerExpiry: return "timer-expiry";
    case SegmentKind::kRunqueueWait: return "runqueue-wait";
    case SegmentKind::kContextSwitch: return "context-switch";
    case SegmentKind::kSpinWait: return "spin-wait";
    case SegmentKind::kKernelExit: return "kernel-exit";
    case SegmentKind::kOobDispatch: return "oob-dispatch";
    case SegmentKind::kOobSwitch: return "oob-switch";
  }
  return "?";
}

Duration LatencyChain::segment_total() const {
  Duration sum = 0;
  for (const auto& s : segments) sum += s.span();
  return sum;
}

Duration LatencyChain::total_for(SegmentKind k) const {
  Duration sum = 0;
  for (const auto& s : segments) {
    if (s.kind == k) sum += s.span();
  }
  return sum;
}

std::string LatencyChain::format() const {
  std::ostringstream os;
  os << origin << ": total " << format_duration(total()) << "\n";
  for (const auto& s : segments) {
    os << "  +" << format_duration(s.begin - start) << "  "
       << format_duration(s.span()) << "  " << to_string(s.kind);
    if (s.cpu >= 0) os << " cpu" << s.cpu;
    if (!s.detail.empty()) os << " (" << s.detail << ")";
    os << "\n";
  }
  return os.str();
}

#if SHIELDSIM_CHAIN_TRACE

void ChainTracer::enable(std::size_t max_live) {
  enabled_ = true;
  max_live_ = max_live;
}

void ChainTracer::disable() {
  enabled_ = false;
  for (std::uint32_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].open) {
      ++abandoned_;
      release(i);
    }
  }
}

const ChainTracer::Chain* ChainTracer::resolve(ChainId id) const {
  if (!id.valid()) return nullptr;
  const auto index = static_cast<std::uint32_t>(id.raw >> 32);
  const auto gen = static_cast<std::uint32_t>(id.raw);
  if (index >= chains_.size()) return nullptr;
  const Chain& c = chains_[index];
  if (c.gen != gen || !c.open) return nullptr;
  return &c;
}

ChainTracer::Chain* ChainTracer::resolve(ChainId id) {
  return const_cast<Chain*>(std::as_const(*this).resolve(id));
}

void ChainTracer::release(std::uint32_t index) {
  Chain& c = chains_[index];
  c.open = false;
  c.origin.clear();
  c.segments.clear();
  if (++c.gen == 0) c.gen = 1;  // keep ChainId.raw != 0 after wrap
  free_.push_back(index);
  --live_;
}

ChainId ChainTracer::open(std::string origin, Time at) {
  if (!enabled_) return {};
  if (live_ >= max_live_) {
    ++dropped_;
    return {};
  }
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    chains_.emplace_back();
    index = static_cast<std::uint32_t>(chains_.size() - 1);
  }
  Chain& c = chains_[index];
  c.open = true;
  c.origin = std::move(origin);
  c.start = at;
  c.last = at;
  ++live_;
  ++opened_;
  return ChainId{(std::uint64_t{index} << 32) | c.gen};
}

void ChainTracer::mark(ChainId id, SegmentKind kind, int cpu, Time at,
                       std::string detail) {
  Chain* c = resolve(id);
  if (c == nullptr) return;
  // Clamp a mark earlier than the previous one to zero width (skipped), so
  // the recorded segments always partition [start, last] exactly.
  if (at <= c->last) return;
  c->segments.push_back(ChainSegment{kind, cpu, c->last, at, std::move(detail)});
  c->last = at;
}

std::optional<LatencyChain> ChainTracer::close(ChainId id, SegmentKind kind,
                                               int cpu, Time at) {
  Chain* c = resolve(id);
  if (c == nullptr) return std::nullopt;
  mark(id, kind, cpu, at);
  LatencyChain out;
  out.origin = std::move(c->origin);
  out.start = c->start;
  out.end = c->last;
  out.segments = std::move(c->segments);
  release(static_cast<std::uint32_t>(id.raw >> 32));
  ++completed_;
  return out;
}

void ChainTracer::abandon(ChainId id) {
  Chain* c = resolve(id);
  if (c == nullptr) return;
  release(static_cast<std::uint32_t>(id.raw >> 32));
  ++abandoned_;
}

#endif  // SHIELDSIM_CHAIN_TRACE

}  // namespace sim

// Lightweight event trace.
//
// A bounded ring of (time, category, message) records. Tests assert on it;
// debugging dumps it. Tracing is off by default so the hot path costs one
// branch.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sim {

enum class TraceCategory : std::uint8_t {
  kSched,     ///< context switches, wakeups, migrations
  kIrq,       ///< hardirq entry/exit, IPIs
  kSoftirq,   ///< bottom-half execution
  kLock,      ///< spinlock contention
  kSyscall,   ///< syscall entry/exit
  kShield,    ///< shield mask changes
  kDevice,    ///< device activity
  kWorkload,  ///< workload generator activity
};

const char* to_string(TraceCategory c);

struct TraceRecord {
  Time at;
  TraceCategory category;
  int cpu;  ///< -1 when not CPU-specific
  std::string message;
};

class Trace {
 public:
  /// Enable recording, keeping at most `capacity` most-recent records.
  void enable(std::size_t capacity = 65536);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time at, TraceCategory category, int cpu, std::string message);

  [[nodiscard]] const std::deque<TraceRecord>& records() const { return records_; }

  /// All records of one category, for test assertions.
  [[nodiscard]] std::vector<TraceRecord> by_category(TraceCategory c) const;

  /// Number of records of one category.
  [[nodiscard]] std::size_t count(TraceCategory c) const;

  void clear() { records_.clear(); }

  /// Render the trace as text (one line per record).
  [[nodiscard]] std::string dump() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::deque<TraceRecord> records_;
};

}  // namespace sim

// Lightweight event trace.
//
// Two cooperating facilities live here:
//
//  * `Trace` — a bounded ring of (time, category, message) records. Tests
//    assert on it; debugging dumps it.
//  * `ChainTracer` — structured latency chains. A chain opens when a device
//    raises an interrupt (or a kernel timer expires) and follows the wakeup
//    through the kernel: irq-raise → handler → wakeup → runqueue wait →
//    context switch → kernel exit, with spin-wait intervals split out by
//    lock. Closing a chain yields a `LatencyChain` whose segments partition
//    [start, end] exactly, so a worst-case histogram sample can be
//    decomposed into the kernel paths that produced it (§6.2's analysis of
//    why /dev/rtc is slow and the RCIM ioctl path is not).
//
// Both are off by default so the hot paths cost one branch. ChainTracer can
// additionally be compiled out entirely (-DSHIELDSIM_CHAIN_TRACE=0); every
// emit site goes through an id validity check that is constant-false in
// that configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.h"

#ifndef SHIELDSIM_CHAIN_TRACE
#define SHIELDSIM_CHAIN_TRACE 1
#endif

namespace sim {

enum class TraceCategory : std::uint8_t {
  kSched,     ///< context switches, wakeups, migrations
  kIrq,       ///< hardirq entry/exit, IPIs
  kSoftirq,   ///< bottom-half execution
  kLock,      ///< spinlock contention
  kSyscall,   ///< syscall entry/exit
  kShield,    ///< shield mask changes
  kDevice,    ///< device activity
  kWorkload,  ///< workload generator activity
};

const char* to_string(TraceCategory c);

struct TraceRecord {
  Time at;
  TraceCategory category;
  int cpu;  ///< -1 when not CPU-specific
  std::string message;
};

class Trace {
 public:
  /// Enable recording, keeping at most `capacity` most-recent records.
  void enable(std::size_t capacity = 65536);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time at, TraceCategory category, int cpu, std::string message);

  [[nodiscard]] const std::deque<TraceRecord>& records() const { return records_; }

  /// All records of one category, for test assertions.
  [[nodiscard]] std::vector<TraceRecord> by_category(TraceCategory c) const;

  /// Number of records of one category.
  [[nodiscard]] std::size_t count(TraceCategory c) const;

  void clear() { records_.clear(); }

  /// Render the trace as text (one line per record).
  [[nodiscard]] std::string dump() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::deque<TraceRecord> records_;
};

// ---------------------------------------------------------------------------
// Latency chains
// ---------------------------------------------------------------------------

/// What a stretch of a latency chain was spent on. One kind per segment;
/// a chain's segments partition [start, end] in order.
enum class SegmentKind : std::uint8_t {
  kIrqRaise,       ///< device raise → hardirq entry (wire delay + masked time)
  kIrqHandler,     ///< hardirq handler execution up to the wakeup
  kSoftirq,        ///< bottom-half execution on the wakeup path
  kTimerExpiry,    ///< kernel timer wheel expiry processing
  kRunqueueWait,   ///< woken but waiting for the CPU (incl. current's exit)
  kContextSwitch,  ///< scheduler pick + switch cost
  kSpinWait,       ///< busy-waiting on a contended spinlock (detail = lock)
  kKernelExit,     ///< in-kernel work on the woken path back to user space
  kOobDispatch,    ///< out-of-band stage handler dispatch (fixed cost)
  kOobSwitch,      ///< out-of-band stage task switch-in (fixed cost)
};

const char* to_string(SegmentKind k);

/// Handle to a chain in flight. Encodes slot + generation; a stale id
/// (chain already closed, slot reused) is rejected by every operation.
struct ChainId {
  std::uint64_t raw = 0;  ///< 0 means "no chain".

  [[nodiscard]] bool valid() const { return raw != 0; }
  friend bool operator==(ChainId, ChainId) = default;
};

struct ChainSegment {
  SegmentKind kind;
  int cpu = -1;
  Time begin = 0;
  Time end = 0;
  std::string detail;  ///< e.g. the contended lock's name; usually empty

  [[nodiscard]] Duration span() const { return end - begin; }
};

/// A completed chain. `segments` partition [start, end] exactly:
/// segment_total() == total() by construction.
struct LatencyChain {
  std::string origin;  ///< e.g. "irq8", "ktimer"
  Time start = 0;
  Time end = 0;
  std::vector<ChainSegment> segments;

  [[nodiscard]] Duration total() const { return end - start; }
  [[nodiscard]] Duration segment_total() const;
  /// Sum of the spans of every segment of one kind.
  [[nodiscard]] Duration total_for(SegmentKind k) const;
  /// Human-readable decomposition, one line per segment.
  [[nodiscard]] std::string format() const;
};

/// Records latency chains. Runtime-toggleable (`enable`/`disable`) and
/// compile-time removable (SHIELDSIM_CHAIN_TRACE=0). Emit sites follow the
/// pattern: `open()` returns an invalid id when disabled, and `mark`/
/// `close`/`abandon` on an invalid id are single-branch no-ops — so a
/// disabled tracer never allocates and never perturbs the simulation.
///
/// The tracer only *reads* simulation time; it never schedules events or
/// draws random numbers, so enabling it cannot change the event stream.
class ChainTracer {
 public:
  /// True when chain tracing was compiled in. When false, enable() is a
  /// no-op and open() always returns an invalid id.
  static constexpr bool compiled_in() { return SHIELDSIM_CHAIN_TRACE != 0; }

#if SHIELDSIM_CHAIN_TRACE
  /// Start recording. At most `max_live` chains may be in flight; opens
  /// beyond that are dropped (counted in dropped()).
  void enable(std::size_t max_live = 1024);
  /// Stop recording and abandon every chain still in flight.
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a chain at `at`. Returns an invalid id when disabled or at the
  /// live cap; all downstream operations on that id are no-ops.
  ChainId open(std::string origin, Time at);

  /// Append a segment of `kind` covering [last mark, at]. A mark earlier
  /// than the previous one is clamped (zero-width), keeping the partition
  /// exact even when marks arrive out of order across CPUs.
  void mark(ChainId id, SegmentKind kind, int cpu, Time at,
            std::string detail = {});

  /// Mark the final segment and complete the chain. Returns the finished
  /// chain, or nullopt for an invalid/stale id.
  std::optional<LatencyChain> close(ChainId id, SegmentKind kind, int cpu,
                                    Time at);

  /// Drop a chain without completing it (task died, wakeup superseded).
  void abandon(ChainId id);

  [[nodiscard]] bool alive(ChainId id) const { return resolve(id) != nullptr; }

  [[nodiscard]] std::uint64_t opened() const { return opened_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t live() const { return live_; }

  /// Zero the opened/completed/abandoned/dropped statistics. Chains in
  /// flight are untouched — they are control state, and closing them later
  /// counts toward the new window.
  void reset_stats() {
    opened_ = 0;
    completed_ = 0;
    abandoned_ = 0;
    dropped_ = 0;
  }

 private:
  struct Chain {
    std::uint32_t gen = 1;
    bool open = false;
    std::string origin;
    Time start = 0;
    Time last = 0;  ///< end of the most recent segment
    std::vector<ChainSegment> segments;
  };

  [[nodiscard]] const Chain* resolve(ChainId id) const;
  [[nodiscard]] Chain* resolve(ChainId id);
  void release(std::uint32_t index);

  std::vector<Chain> chains_;
  std::vector<std::uint32_t> free_;
  bool enabled_ = false;
  std::size_t max_live_ = 0;
  std::size_t live_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t dropped_ = 0;
#else
  // Compiled-out stubs: one constant-false branch at every emit site.
  void enable(std::size_t = 1024) {}
  void disable() {}
  [[nodiscard]] bool enabled() const { return false; }
  ChainId open(const std::string&, Time) { return {}; }
  void mark(ChainId, SegmentKind, int, Time, std::string = {}) {}
  std::optional<LatencyChain> close(ChainId, SegmentKind, int, Time) {
    return std::nullopt;
  }
  void abandon(ChainId) {}
  [[nodiscard]] bool alive(ChainId) const { return false; }
  [[nodiscard]] std::uint64_t opened() const { return 0; }
  [[nodiscard]] std::uint64_t completed() const { return 0; }
  [[nodiscard]] std::uint64_t abandoned() const { return 0; }
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  [[nodiscard]] std::size_t live() const { return 0; }
  void reset_stats() {}
#endif
};

}  // namespace sim

#include "sim/event_queue.h"

#include <algorithm>

#include "sim/assert.h"

namespace sim {

EventId EventQueue::schedule_at(Time at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end());
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return pending_.erase(id.seq) > 0;
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && !pending_.contains(heap_.front().seq)) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

Time EventQueue::next_time() {
  SIM_ASSERT_MSG(!empty(), "next_time() on empty queue");
  drop_dead_prefix();
  return heap_.front().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  SIM_ASSERT_MSG(!empty(), "pop() on empty queue");
  drop_dead_prefix();
  std::pop_heap(heap_.begin(), heap_.end());
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.seq);
  return {e.at, std::move(e.cb)};
}

}  // namespace sim

#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "sim/assert.h"

namespace sim {

std::uint32_t EventQueue::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  SIM_ASSERT_MSG(slots_.size() < kMaxSlots, "event slab exceeds 2^24 slots");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.cb.reset();
  s.live = false;
  s.gen = (s.gen + 1) & kGenMask;
  if (s.gen == 0) s.gen = 1;  // keep EventId.raw != 0 after wrap
  free_slots_.push_back(index);
}

EventId EventQueue::schedule_at(Time at, Callback cb) {
  const std::uint32_t index = alloc_slot();
  Slot& s = slots_[index];
  s.at = at;
  s.seq = next_seq_++;
  s.live = true;
  s.cb = std::move(cb);
  ++live_;
  place(Key{at, s.seq, index});
  return EventId{(std::uint64_t{index} << kGenBits) | s.gen};
}

void EventQueue::place(Key k) {
  if (k.at < horizon_) {
    near_.push_back(k);
    std::push_heap(near_.begin(), near_.end(), KeyAfter{});
    return;
  }
  for (int l = 0; l < kLevels; ++l) {
    const int shift = level_shift(l);
    if ((k.at >> shift) - (horizon_ >> shift) < kBuckets) {
      const auto idx = static_cast<std::size_t>((k.at >> shift) & kBucketMask);
      buckets_[static_cast<std::size_t>(l) * kBuckets + idx].push_back(k.slot);
      occupied_[static_cast<std::size_t>(l)] |= std::uint64_t{1} << idx;
      return;
    }
  }
  overflow_.push_back(k);
  std::push_heap(overflow_.begin(), overflow_.end(), KeyAfter{});
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto index = static_cast<std::uint32_t>(id.raw >> kGenBits);
  const std::uint64_t gen = id.raw & kGenMask;
  if (index >= slots_.size()) return false;
  Slot& s = slots_[index];
  if (s.gen != gen || !s.live) return false;
  s.live = false;
  s.cb.reset();  // release captures now; the tombstone is reclaimed later
  --live_;
  ++dead_;
  maybe_compact();
  return true;
}

void EventQueue::drop_dead_near() {
  while (ready_head_ < ready_.size() &&
         !slots_[ready_[ready_head_].slot].live) {
    release_slot(ready_[ready_head_].slot);
    ++ready_head_;
    --dead_;
  }
  while (!near_.empty() && !slots_[near_.front().slot].live) {
    std::pop_heap(near_.begin(), near_.end(), KeyAfter{});
    const std::uint32_t index = near_.back().slot;
    near_.pop_back();
    --dead_;
    release_slot(index);
  }
}

void EventQueue::refresh_near() {
  drop_dead_near();
  while (near_.empty() && ready_head_ == ready_.size()) {
    SIM_ASSERT_MSG(live_ > 0, "refresh on empty calendar");
    advance_window();
    drop_dead_near();
  }
}

/// Move every event of the overflow heap that now falls before horizon_
/// into the near heap.
void EventQueue::pull_overflow() {
  while (!overflow_.empty() && overflow_.front().at < horizon_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), KeyAfter{});
    const Key k = overflow_.back();
    overflow_.pop_back();
    if (!slots_[k.slot].live) {
      --dead_;
      release_slot(k.slot);
      continue;
    }
    near_.push_back(k);
    std::push_heap(near_.begin(), near_.end(), KeyAfter{});
  }
}

void EventQueue::advance_window() {
  // Find the earliest pending bucket across the wheel levels. On equal
  // start times the *highest* level must go first: its (coarser) bucket can
  // contain events earlier than the end of the lower level's window.
  int best_level = -1;
  Time best_start = 0;
  std::size_t best_idx = 0;
  for (int l = 0; l < kLevels; ++l) {
    const std::uint64_t bits = occupied_[static_cast<std::size_t>(l)];
    if (bits == 0) continue;
    const int shift = level_shift(l);
    const std::uint64_t cursor = horizon_ >> shift;
    const auto c = static_cast<int>(cursor & kBucketMask);
    // All pending buckets lie within one lap ahead of the cursor, so the
    // first set bit in circular order from it is the earliest.
    const int j = std::countr_zero(std::rotr(bits, c));
    const Time start = (cursor + static_cast<std::uint64_t>(j)) << shift;
    if (best_level < 0 || start < best_start ||
        (start == best_start && l > best_level)) {
      best_level = l;
      best_start = start;
      best_idx = static_cast<std::size_t>((c + j) & static_cast<int>(kBucketMask));
    }
  }

  const Time overflow_start =
      overflow_.empty()
          ? 0
          : (overflow_.front().at >> kGranularityBits) << kGranularityBits;
  SIM_ASSERT_MSG(best_level >= 0 || !overflow_.empty(),
                 "advance on empty calendar");

  if (!overflow_.empty() && (best_level < 0 || overflow_start < best_start)) {
    // The wheel is empty this far out; jump the window to the overflow top.
    horizon_ = overflow_start + kWindow;
    pull_overflow();
    return;
  }

  if (best_level == 0) {
    // Drain the bucket into the ready lane: sorted once, then served by
    // index. Only reached with the previous lane fully consumed.
    horizon_ = best_start + kWindow;
    std::vector<std::uint32_t>& bucket = buckets_[best_idx];
    ready_.clear();
    ready_head_ = 0;
    for (const std::uint32_t index : bucket) {
      const Slot& s = slots_[index];
      if (!s.live) {
        --dead_;
        release_slot(index);
        continue;
      }
      ready_.push_back(Key{s.at, s.seq, index});
    }
    bucket.clear();
    occupied_[0] &= ~(std::uint64_t{1} << best_idx);
    // Events are mostly scheduled in increasing time, so the bucket is
    // usually already in order; the is_sorted scan is cheaper than sorting.
    if (!std::is_sorted(ready_.begin(), ready_.end(), key_before)) {
      std::sort(ready_.begin(), ready_.end(), key_before);
    }
    if (!overflow_.empty() && overflow_start == best_start) pull_overflow();
    return;
  }

  // Cascade: redistribute the level's bucket one (or more) levels down.
  // horizon_ is kWindow-aligned and only ever advances; every event in the
  // bucket has at >= horizon_, so re-placing lands strictly below
  // best_level and terminates.
  horizon_ = std::max(horizon_, best_start);
  std::vector<std::uint32_t>& bucket =
      buckets_[static_cast<std::size_t>(best_level) * kBuckets + best_idx];
  scratch_.swap(bucket);
  occupied_[static_cast<std::size_t>(best_level)] &=
      ~(std::uint64_t{1} << best_idx);
  for (const std::uint32_t index : scratch_) {
    const Slot& s = slots_[index];
    if (!s.live) {
      --dead_;
      release_slot(index);
      continue;
    }
    place(Key{s.at, s.seq, index});
  }
  scratch_.clear();
}

Time EventQueue::next_time() {
  SIM_ASSERT_MSG(!empty(), "next_time() on empty queue");
  refresh_near();
  if (ready_head_ == ready_.size()) return near_.front().at;
  if (near_.empty() || key_before(ready_[ready_head_], near_.front())) {
    return ready_[ready_head_].at;
  }
  return near_.front().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  SIM_ASSERT_MSG(!empty(), "pop() on empty queue");
  refresh_near();
  Key k;
  if (ready_head_ < ready_.size() &&
      (near_.empty() || key_before(ready_[ready_head_], near_.front()))) {
    k = ready_[ready_head_++];
  } else {
    std::pop_heap(near_.begin(), near_.end(), KeyAfter{});
    k = near_.back();
    near_.pop_back();
  }
  Slot& s = slots_[k.slot];
  std::pair<Time, Callback> out{s.at, std::move(s.cb)};
  --live_;
  release_slot(k.slot);
  return out;
}

bool EventQueue::pop_before(Time deadline, Time& at, Callback& cb) {
  if (empty()) return false;
  refresh_near();
  Key k;
  const bool from_ready =
      ready_head_ < ready_.size() &&
      (near_.empty() || key_before(ready_[ready_head_], near_.front()));
  if (from_ready) {
    k = ready_[ready_head_];
    if (k.at > deadline) return false;
    ++ready_head_;
  } else {
    k = near_.front();
    if (k.at > deadline) return false;
    std::pop_heap(near_.begin(), near_.end(), KeyAfter{});
    near_.pop_back();
  }
  Slot& s = slots_[k.slot];
  at = s.at;
  cb = std::move(s.cb);
  --live_;
  release_slot(k.slot);
  return true;
}

void EventQueue::maybe_compact() {
  if (dead_ > 64 && dead_ > live_) compact();
}

/// Sweep every container, dropping tombstones and recycling their slots.
/// Runs when tombstones outnumber live events, so a cancel-heavy run's
/// memory stays proportional to its peak *live* event count — the old
/// lazy-cancellation heap grew without bound until dead entries happened
/// to surface at the top.
void EventQueue::compact() {
  const auto sweep_heap = [this](std::vector<Key>& heap) {
    auto out = heap.begin();
    for (const Key& k : heap) {
      if (slots_[k.slot].live) {
        *out++ = k;
      } else {
        --dead_;
        release_slot(k.slot);
      }
    }
    heap.erase(out, heap.end());
    std::make_heap(heap.begin(), heap.end(), KeyAfter{});
  };
  sweep_heap(near_);
  sweep_heap(overflow_);

  {
    auto keep = ready_.begin();
    for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
      const Key& k = ready_[i];
      if (slots_[k.slot].live) {
        *keep++ = k;
      } else {
        --dead_;
        release_slot(k.slot);
      }
    }
    ready_.erase(keep, ready_.end());
    ready_head_ = 0;
  }

  for (int l = 0; l < kLevels; ++l) {
    std::uint64_t bits = occupied_[static_cast<std::size_t>(l)];
    occupied_[static_cast<std::size_t>(l)] = 0;
    while (bits != 0) {
      const auto idx = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      std::vector<std::uint32_t>& bucket =
          buckets_[static_cast<std::size_t>(l) * kBuckets + idx];
      auto out = bucket.begin();
      for (const std::uint32_t index : bucket) {
        if (slots_[index].live) {
          *out++ = index;
        } else {
          --dead_;
          release_slot(index);
        }
      }
      bucket.erase(out, bucket.end());
      if (!bucket.empty()) {
        occupied_[static_cast<std::size_t>(l)] |= std::uint64_t{1} << idx;
      }
    }
  }
  SIM_ASSERT(dead_ == 0);
}

}  // namespace sim

// Deterministic random number generation for the simulator.
//
// Every experiment is seeded so results are bit-reproducible across runs,
// which the test suite relies on. xoshiro256++ is used instead of
// std::mt19937 because its state is small, splitting is cheap (each model
// component gets an independent stream), and the output is identical across
// standard library implementations.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/assert.h"
#include "sim/time.h"

namespace sim {

/// Seed-derivation namespaces. Labels are free-form strings chosen by
/// callers, so two different derivation purposes could otherwise collide on
/// the same (root, label) pair: a batch spec literally named "retry#1"
/// would share its stream with the first retry of an unnamed spec, and a
/// spec named "foo#0" with fan-out run 0 of a spec named "foo". The domain
/// is folded into the hash *before* the label, so equal labels in
/// different domains provably yield unrelated streams.
enum class SeedDomain : std::uint64_t {
  kGeneric = 0,  // default; byte-compatible with the two-argument overload
  kBatch = 1,    // per-spec seeds inside a batch (label = spec name)
  kRetry = 2,    // transient-failure retries (label = "retry#N")
  kFanout = 3,   // run_seeds replicates (label = "name#i")
  kFork = 4,     // snapshot-fork children (label = spec digest + seed)
};

/// Derive a case seed from a root seed and a stable case label.
///
/// SplitMix64-style: the label is FNV-1a hashed, folded into the root, and
/// passed through the SplitMix64 finalizer. Because the result depends only
/// on (root, domain, label) — not on enumeration order — inserting,
/// removing, or reordering cases in a sweep never reshuffles the RNG
/// streams of the other cases (unlike the old `root + index` convention).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, SeedDomain domain,
                                        std::string_view label);

/// Two-argument form: SeedDomain::kGeneric.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root,
                                        std::string_view label);

/// xoshiro256++ generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream; used to give each device/workload
  /// its own RNG so adding one model component never perturbs another.
  [[nodiscard]] Rng split();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform duration in [lo, hi] inclusive.
  Duration uniform_duration(Duration lo, Duration hi) { return uniform(lo, hi); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponential distribution with the given mean (> 0).
  double exponential(double mean);

  /// Exponentially distributed duration with the given mean.
  Duration exponential_duration(Duration mean);

  /// Normal distribution (Box-Muller; consumes two uniforms per pair).
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(log_mean, log_sigma)). Parameters are of the
  /// underlying normal.
  double lognormal(double log_mean, double log_sigma);

  /// Bounded Pareto on [lo, hi] with shape alpha — models the heavy tail of
  /// kernel critical-section hold times.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Bounded-Pareto duration.
  Duration bounded_pareto_duration(Duration lo, Duration hi, double alpha);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sim

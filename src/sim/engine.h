// The simulation engine: clock + calendar + run loop.
//
// Everything in the model — hardware, kernel, workloads — schedules
// callbacks here. Time only advances between events; callbacks observe a
// frozen `now()`.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"

namespace sim {

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Frozen during a callback.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run `delay` ns from now.
  EventId schedule(Duration delay, EventQueue::Callback cb) {
    return queue_.schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` at an absolute time (must not be in the past).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  /// Cancel a pending event; no-op if it already fired or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run events until the calendar is empty or `deadline` is reached.
  /// Events stamped exactly at `deadline` do fire; `now()` ends at
  /// min(deadline, last event time... see implementation) — after return,
  /// now() == deadline if the calendar outlived it.
  void run_until(Time deadline);

  /// Run a single event. Returns false if the calendar is empty.
  bool step();

  /// Run until the calendar is empty. Only sensible for models that quiesce.
  void run_to_completion();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Root RNG; model components should call `rng().split()` once at
  /// construction to obtain an independent stream.
  Rng& rng() { return rng_; }

  /// Replace the root RNG stream. Used by the snapshot fork path: after a
  /// restore, reseeding with a fork-label-derived seed makes every stream
  /// subsequently split from the root diverge deterministically between
  /// siblings, while streams split before the snapshot continue their
  /// checkpointed sequences unchanged.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Event trace for debugging and test assertions.
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Structured latency-chain tracer (see sim/trace.h). Off by default;
  /// enabling it never perturbs the event stream.
  ChainTracer& chain_tracer() { return chain_tracer_; }
  const ChainTracer& chain_tracer() const { return chain_tracer_; }

  /// Central metric registry. Components register counters/gauges at
  /// construction; exporters (procfs, reports, the sampler) read it.
  telemetry::Registry& telemetry() { return telemetry_; }
  const telemetry::Registry& telemetry() const { return telemetry_; }

  /// Post-mortem event ring (see telemetry/flight_recorder.h). Disabled by
  /// default; recording is passive and never perturbs the event stream.
  telemetry::FlightRecorder& flight_recorder() { return flight_recorder_; }
  const telemetry::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  Trace trace_;
  ChainTracer chain_tracer_;
  telemetry::Registry telemetry_;
  telemetry::FlightRecorder flight_recorder_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace sim

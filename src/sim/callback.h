// Allocation-free event callback.
//
// Every event on the calendar used to carry a `std::function<void()>`,
// which heap-allocates for any capture beyond two pointers — one malloc and
// one free per simulated event, dominating the schedule/pop hot path. The
// model's callbacks are all tiny (a `this` pointer plus a cpu id, a request
// descriptor, at most a params struct and a shared_ptr), so this type gives
// them fixed inline storage and *no* heap fallback: a capture that outgrows
// the buffer is a compile error, not a silent allocation.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

/// Move-only `void()` callable with fixed inline storage.
class Callback {
 public:
  /// Sized for the largest capture the model actually schedules (the ttcp
  /// ethernet injector: two references + a params struct + a shared_ptr).
  static constexpr std::size_t kInlineBytes = 64;

  Callback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  Callback(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event callback capture exceeds Callback::kInlineBytes; "
                  "shrink the capture (capture pointers, not objects) or "
                  "grow the inline buffer");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event callback capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callbacks must be nothrow-movable (they live in "
                  "relocatable calendar slots)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    // Most captures (pointers, references, ids) are trivially relocatable;
    // a null relocate_ marks them so moves become a plain buffer copy with
    // no indirect call — the calendar relocates every event at least twice.
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      relocate_ = [](void* src, void* dst) noexcept {
        Fn* s = static_cast<Fn*>(src);
        if (dst != nullptr) ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  /// Invoke. Requires an engaged callback (like std::function, calling an
  /// empty one is a bug; unlike it, no throw — we crash in the invoke).
  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the held callable (releasing its captures) and become empty.
  void reset() {
    if (relocate_ != nullptr) relocate_(storage_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  void move_from(Callback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (relocate_ != nullptr) {
      relocate_(other.storage_, storage_);
    } else if (invoke_ != nullptr) {
      // GCC cannot see that a null invoke_ (empty callback, storage never
      // written) makes this copy unreachable and warns on the read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
      std::memcpy(storage_, other.storage_, kInlineBytes);
#pragma GCC diagnostic pop
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* src, void* dst) noexcept = nullptr;
};

}  // namespace sim

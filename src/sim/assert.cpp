#include "sim/assert.h"

#include <cstdio>
#include <cstdlib>

namespace sim {

void assertion_failure(std::string_view expr, std::string_view file, int line,
                       std::string_view msg) {
  std::fprintf(stderr, "SIM_ASSERT failed: %.*s at %.*s:%d%s%.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               msg.empty() ? "" : " — ", static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace sim

#include "sim/arena.h"

#include <sys/mman.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>

#include "sim/assert.h"

// ASan tracks a shadow poison state per byte. It never sees arena
// allocations (we bypass its malloc), but libstdc++ *container annotations*
// still poison the unused capacity tail of vectors/strings living in arena
// memory. Reusing a freed block or rewinding the cursor would then trip
// container-overflow reports on memory that is logically fresh, so every
// hand-out and every rewind explicitly unpoisons the affected range.
#if defined(__SANITIZE_ADDRESS__)
#define SHIELDSIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SHIELDSIM_ASAN 1
#endif
#endif
#ifdef SHIELDSIM_ASAN
extern "C" void __asan_unpoison_memory_region(const volatile void*,
                                              std::size_t);
#define SHIELDSIM_UNPOISON(p, n) \
  __asan_unpoison_memory_region((p), (n))
#else
#define SHIELDSIM_UNPOISON(p, n) ((void)0)
#endif

namespace sim {
namespace {

constexpr std::size_t kHeaderBytes = 16;
constexpr std::uint32_t kBlockMagic = 0x5a3eb10cu;
constexpr std::uint32_t kClassNone = 0xffffffffu;  // bump-only, not reused

constexpr std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

// Live-arena registry so `operator delete` can route a pointer back to the
// arena that owns it even when that arena is not active on this thread
// (results copied out of an arena keep no arena pointers, but unwinding
// destructors legitimately free arena blocks after a Scope closed).
// Constant-initialized — operator new/delete may run before any dynamic
// initializer.
constexpr std::size_t kMaxArenas = 64;
struct RegionSlot {
  std::atomic<const std::byte*> base{nullptr};
  std::atomic<std::size_t> size{0};
  std::atomic<StateArena*> arena{nullptr};
};
constinit RegionSlot g_regions[kMaxArenas];
constinit std::atomic<std::size_t> g_region_high{0};

constinit thread_local StateArena* tl_active = nullptr;

std::mutex& registry_mutex() {
  static std::mutex m;  // touched only from StateArena ctor/dtor (malloc ok)
  return m;
}

}  // namespace

struct StateArena::BlockHeader {
  std::uint64_t payload;  // rounded payload bytes actually reserved
  std::uint32_t magic;
  std::uint32_t cls;  // size-class index, or kClassNone
  static_assert(sizeof(std::uint64_t) + 2 * sizeof(std::uint32_t) ==
                kHeaderBytes);
};

StateArena::StateArena(std::size_t reserve_bytes) {
  reserve_ = align_up(reserve_bytes, std::size_t{1} << 12);
  void* p = ::mmap(nullptr, reserve_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc{};
  base_ = static_cast<std::byte*>(p);
  std::lock_guard<std::mutex> lk(registry_mutex());
  for (std::size_t i = 0; i < kMaxArenas; ++i) {
    if (g_regions[i].arena.load(std::memory_order_relaxed) == nullptr &&
        g_regions[i].base.load(std::memory_order_relaxed) == nullptr) {
      g_regions[i].base.store(base_, std::memory_order_relaxed);
      g_regions[i].size.store(reserve_, std::memory_order_relaxed);
      g_regions[i].arena.store(this, std::memory_order_release);
      std::size_t high = g_region_high.load(std::memory_order_relaxed);
      while (high < i + 1 &&
             !g_region_high.compare_exchange_weak(high, i + 1)) {
      }
      return;
    }
  }
  ::munmap(base_, reserve_);
  throw std::bad_alloc{};  // more live arenas than kMaxArenas
}

StateArena::~StateArena() {
  {
    std::lock_guard<std::mutex> lk(registry_mutex());
    for (std::size_t i = 0; i < kMaxArenas; ++i) {
      if (g_regions[i].arena.load(std::memory_order_relaxed) == this) {
        g_regions[i].arena.store(nullptr, std::memory_order_relaxed);
        g_regions[i].base.store(nullptr, std::memory_order_release);
        g_regions[i].size.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
  ::munmap(base_, reserve_);
}

StateArena* StateArena::current() { return tl_active; }

StateArena::Scope::Scope(StateArena& arena)
    : arena_(&arena), prev_(tl_active), active_(true) {
  tl_active = arena_;
}

StateArena::Scope::~Scope() {
  if (active_) tl_active = prev_;
}

void StateArena::Scope::pause() {
  if (active_) {
    tl_active = prev_;
    active_ = false;
  }
}

void StateArena::Scope::resume() {
  if (!active_) {
    tl_active = arena_;
    active_ = true;
  }
}

void* StateArena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  if (align < kHeaderBytes) align = kHeaderBytes;
  if (align == kHeaderBytes && size <= kMaxClassBytes) {
    std::size_t cls = 0;
    while ((std::size_t{16} << cls) < size) ++cls;
    if (void* head = free_heads_[cls]) {
      free_heads_[cls] = *static_cast<void**>(head);
      auto* h = reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(head) -
                                               kHeaderBytes);
      SIM_ASSERT_MSG(h->magic == kBlockMagic && h->cls == cls,
                     "arena freelist corruption");
      ++live_blocks_;
      SHIELDSIM_UNPOISON(head, h->payload);
      return head;
    }
    return bump_allocate(std::size_t{16} << cls, kHeaderBytes);
  }
  return bump_allocate(align_up(size, kHeaderBytes), align);
}

void* StateArena::bump_allocate(std::size_t payload, std::size_t align) {
  std::size_t p = align_up(bump_ + kHeaderBytes, align);
  std::size_t end = p + payload;
  if (end > reserve_) throw std::bad_alloc{};
  auto* h = reinterpret_cast<BlockHeader*>(base_ + p - kHeaderBytes);
  SHIELDSIM_UNPOISON(h, kHeaderBytes + payload);
  h->payload = payload;
  h->magic = kBlockMagic;
  h->cls = kClassNone;
  if (align == kHeaderBytes && payload <= kMaxClassBytes) {
    std::uint32_t cls = 0;
    while ((std::size_t{16} << cls) < payload) ++cls;
    h->cls = cls;
  }
  bump_ = end;
  if (bump_ > high_water_) high_water_ = bump_;
  ++live_blocks_;
  return base_ + p;
}

void StateArena::deallocate(void* p) {
  auto* h = reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(p) -
                                           kHeaderBytes);
  SIM_ASSERT((h->magic == kBlockMagic) && "arena free of foreign pointer");
  --live_blocks_;
  if (h->cls == kClassNone) return;  // large/over-aligned: reclaimed at rewind
  *static_cast<void**>(p) = free_heads_[h->cls];
  free_heads_[h->cls] = p;
}

bool StateArena::deallocate_routed(void* p) {
  std::size_t high = g_region_high.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < high; ++i) {
    const std::byte* base = g_regions[i].base.load(std::memory_order_acquire);
    if (base == nullptr) continue;
    std::size_t size = g_regions[i].size.load(std::memory_order_relaxed);
    if (static_cast<const std::byte*>(p) >= base &&
        static_cast<const std::byte*>(p) < base + size) {
      StateArena* a = g_regions[i].arena.load(std::memory_order_acquire);
      SIM_ASSERT((a != nullptr) && "free into dead arena region");
      a->deallocate(p);
      return true;
    }
  }
  return false;
}

StateArena::Mark StateArena::mark() const {
  Mark m;
  m.bump = bump_;
  m.free_heads = free_heads_;
  return m;
}

void StateArena::restore_mark(const Mark& m) {
  SIM_ASSERT((m.bump <= reserve_) && "mark beyond arena reserve");
  bump_ = m.bump;
  free_heads_ = m.free_heads;
  // Shadow state accumulated by container annotations no longer matches
  // the restored bytes anywhere in the previously-touched range.
  SHIELDSIM_UNPOISON(base_, high_water_);
}

void StateArena::reset() {
  bump_ = 0;
  live_blocks_ = 0;
  free_heads_.fill(nullptr);
  SHIELDSIM_UNPOISON(base_, high_water_);
}

// ---------------------------------------------------------------------------
// Arena pool: mappings stay alive for the whole process so that any pointer
// ever handed out (notably ones cached by function-local statics) keeps
// pointing at mapped memory. Fixed-size storage — pool operations must not
// themselves allocate through operator new while a caller's arena is active.

namespace {
constexpr std::size_t kMaxPool = 64;
constinit StateArena* g_pool[kMaxPool];
constinit std::size_t g_pool_count = 0;
std::mutex& pool_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

StateArena* StateArena::acquire_pooled() {
  StateArena* saved = tl_active;
  tl_active = nullptr;  // pool bookkeeping + arena construction use malloc
  StateArena* out = nullptr;
  {
    std::lock_guard<std::mutex> lk(pool_mutex());
    if (g_pool_count > 0) out = g_pool[--g_pool_count];
  }
  if (out == nullptr) {
    // Placement-new into malloc'd storage rather than plain `new`: pooled
    // arenas are never deleted (their mappings outlive the process), and
    // the plain form makes GCC pair the emitted exception-cleanup delete
    // with this TU's free-based operator delete and reject the build
    // under -Werror=mismatched-new-delete.
    void* raw = std::malloc(sizeof(StateArena));
    if (raw == nullptr) throw std::bad_alloc{};
    out = ::new (raw) StateArena();
  }
  tl_active = saved;
  return out;
}

void StateArena::release_pooled(StateArena* arena) {
  if (arena == nullptr) return;
  arena->reset();
  std::lock_guard<std::mutex> lk(pool_mutex());
  if (g_pool_count < kMaxPool) {
    g_pool[g_pool_count++] = arena;
    return;
  }
  // Pool full: intentionally keep the mapping alive (see class contract)
  // but forget the object. In practice the pool never fills.
}

}  // namespace sim

// ---------------------------------------------------------------------------
// Global allocation routing. While a StateArena is active on the calling
// thread every operator new is served from it; otherwise this is a plain
// malloc passthrough (which under ASan is the intercepted, redzoned
// malloc). operator delete routes by address range, so arena blocks find
// their way home from any thread and any activation state.

namespace {

void* route_allocate(std::size_t size, std::size_t align) {
  if (sim::StateArena* a = sim::tl_active) return a->allocate(size, align);
  if (align > alignof(std::max_align_t)) {
    void* p = nullptr;
    if (::posix_memalign(&p, align, size == 0 ? align : size) != 0)
      return nullptr;
    return p;
  }
  return std::malloc(size == 0 ? 1 : size);
}

void route_free(void* p) {
  if (p == nullptr) return;
  if (sim::StateArena::deallocate_routed(p)) return;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = route_allocate(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = route_allocate(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = route_allocate(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = route_allocate(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return route_allocate(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return route_allocate(size, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return route_allocate(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return route_allocate(size, static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { route_free(p); }
void operator delete[](void* p) noexcept { route_free(p); }
void operator delete(void* p, std::size_t) noexcept { route_free(p); }
void operator delete[](void* p, std::size_t) noexcept { route_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { route_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { route_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  route_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  route_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  route_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  route_free(p);
}

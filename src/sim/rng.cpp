#include "sim/rng.h"

#include <cmath>
#include <numbers>

namespace sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, SeedDomain domain,
                          std::string_view label) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a over the label
  if (domain != SeedDomain::kGeneric) {
    // Fold the domain tag in as a virtual prefix "byte" that no label
    // character can reproduce (labels feed the hash one octet at a time;
    // this mixes a full 64-bit constant per domain).
    h ^= 0x9e6c63d0a1b2c3d4ull + static_cast<std::uint64_t>(domain);
    h *= 1099511628211ull;
  }
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t x = root ^ h;
  return splitmix64(x);
}

std::uint64_t derive_seed(std::uint64_t root, std::string_view label) {
  return derive_seed(root, SeedDomain::kGeneric, label);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  SIM_ASSERT(lo <= hi);
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 2^64 range
  // Debiased modulo (Lemire-style rejection would be overkill here; the
  // ranges in this simulator are tiny relative to 2^64).
  return lo + next_u64() % range;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  SIM_ASSERT(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

Duration Rng::exponential_duration(Duration mean) {
  return static_cast<Duration>(exponential(static_cast<double>(mean)));
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double log_mean, double log_sigma) {
  return std::exp(normal(log_mean, log_sigma));
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  SIM_ASSERT(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Duration Rng::bounded_pareto_duration(Duration lo, Duration hi, double alpha) {
  return static_cast<Duration>(
      bounded_pareto(static_cast<double>(lo), static_cast<double>(hi), alpha));
}

}  // namespace sim

// Contract checking for the simulator.
//
// Models are full of invariants ("a CPU never runs two tasks", "a lock is
// released by its holder"). Violations are programming errors, not runtime
// conditions, so they abort with a message rather than throw.
#pragma once

#include <string_view>

namespace sim {

[[noreturn]] void assertion_failure(std::string_view expr, std::string_view file,
                                    int line, std::string_view msg);

}  // namespace sim

#define SIM_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::sim::assertion_failure(#expr, __FILE__, __LINE__, "");        \
    }                                                                 \
  } while (false)

#define SIM_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::sim::assertion_failure(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                 \
  } while (false)

#define SIM_UNREACHABLE(msg) ::sim::assertion_failure("unreachable", __FILE__, __LINE__, (msg))

#include "sim/time.h"

#include <cstdio>

namespace sim {

std::string format_duration(Duration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_millis(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_micros(d));
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(d));
  }
  return buf;
}

}  // namespace sim

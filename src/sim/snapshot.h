// Checkpoint/restore of arena-hosted engine state.
//
// A Snapshot is a byte copy of a StateArena's used region plus the
// allocator cursor. Restoring copies the bytes back *in place* — every
// object returns to exactly the address it occupied at capture time, so
// interior pointers, vtables and captured closures remain valid without
// any per-type serialization. That makes a snapshot of a warmed-up
// Platform a complete engine checkpoint: event-queue wheel slots with
// their generation tags and pending cancels, RNG streams, per-CPU kernel
// state, device state and telemetry cells are all just bytes in the arena.
//
// Soundness requirements (enforced by the callers in ScenarioRunner):
//  * capture/restore only between events, with no live references held by
//    code outside the arena to objects allocated after the mark;
//  * objects created after capture must be destroyed before restore (their
//    memory is rewound; their destructors will never run afterwards);
//  * the snapshot buffer itself lives on the ordinary heap (std::malloc,
//    never routed to an arena), so a snapshot survives any arena rewind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/arena.h"

namespace sim {

class Snapshot {
 public:
  Snapshot() = default;

  /// Copy the arena's used region and cursor. Safe to call while the arena
  /// is active (the buffer is allocated with std::malloc directly).
  [[nodiscard]] static Snapshot capture(const StateArena& arena);

  /// Copy the bytes back and rewind the cursor. All allocations made since
  /// capture are discarded without running destructors (see header note).
  void restore(StateArena& arena) const;

  [[nodiscard]] bool valid() const { return data_ != nullptr; }
  [[nodiscard]] std::size_t bytes() const { return size_; }

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const;
  };

  StateArena::Mark mark_;
  std::unique_ptr<std::byte[], FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace sim
